// Table 3: sharing cost when two untrusted applications concurrently update one file
// (§6.5). Measured on the real Trio stack: each operation by the other LibFS revokes the
// writer's grant, which triggers checkpoint + verification + remap + auxiliary-state
// rebuild. Compared against NOVA (kernel FS: no sharing cost) and against the trust-group
// configuration (two threads sharing one LibFS: no cost either, §3.2).
//
// Scaling note: the paper's 1 GiB file becomes 64 MiB here (emulated pool), and its
// create-directory sizes (10/100 files) are used as-is. The paper's absolute map/unmap
// cost is dominated by its 100 ms lease; our revocation is immediate-cooperative, so the
// ratios are driven by verification + rebuild, which EXPERIMENTS.md discusses.

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/baselines/fs_factory.h"
#include "src/libfs/arckfs.h"

namespace trio {
namespace bench {
namespace {

constexpr uint64_t kSmallFile = 2 << 20;    // 2 MiB (paper value).
constexpr uint64_t kBigFile = 64 << 20;     // Stands in for the paper's 1 GiB.
constexpr int kIterations = 40;

// Two ArckFS LibFSes alternately writing 4 KiB into a shared file of `file_size`.
double SharedWriteUsPerOp(uint64_t file_size) {
  FsFactoryOptions options;
  options.pool_pages = 1 << 16;  // 256 MiB.
  FsInstance instance = MakeFs("ArckFS-nd", options);
  std::unique_ptr<FsInterface> other = instance.MakeSecondLibFs();

  // Build the file.
  {
    Result<Fd> fd = instance.fs->Open("/shared", OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok());
    std::string chunk(1 << 20, 'x');
    for (uint64_t off = 0; off < file_size; off += chunk.size()) {
      TRIO_CHECK(instance.fs->Pwrite(*fd, chunk.data(), chunk.size(), off).ok());
    }
    TRIO_CHECK_OK(instance.fs->Close(*fd));
  }

  char block[4096];
  std::memset(block, 'y', sizeof(block));
  const double start = NowSeconds();
  for (int i = 0; i < kIterations; ++i) {
    FsInterface* writer = i % 2 == 0 ? instance.fs.get() : other.get();
    Result<Fd> fd = writer->Open("/shared", OpenFlags::ReadWrite());
    TRIO_CHECK(fd.ok()) << fd.status().ToString();
    TRIO_CHECK(writer->Pwrite(*fd, block, sizeof(block),
                              (i * 7919ull * 4096) % file_size)
                   .ok());
    TRIO_CHECK_OK(writer->Close(*fd));
  }
  return (NowSeconds() - start) / kIterations * 1e6;
}

// Trust group: two "processes" sharing one LibFS (no verification on handoff).
double TrustGroupWriteUsPerOp(uint64_t file_size) {
  FsFactoryOptions options;
  options.pool_pages = 1 << 16;
  FsInstance instance = MakeFs("ArckFS-nd", options);
  {
    Result<Fd> fd = instance.fs->Open("/shared", OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok());
    std::string chunk(1 << 20, 'x');
    for (uint64_t off = 0; off < file_size; off += chunk.size()) {
      TRIO_CHECK(instance.fs->Pwrite(*fd, chunk.data(), chunk.size(), off).ok());
    }
    TRIO_CHECK_OK(instance.fs->Close(*fd));
  }
  char block[4096];
  std::memset(block, 'y', sizeof(block));
  const double start = NowSeconds();
  for (int i = 0; i < kIterations; ++i) {
    Result<Fd> fd = instance.fs->Open("/shared", OpenFlags::ReadWrite());
    TRIO_CHECK(fd.ok());
    TRIO_CHECK(instance.fs->Pwrite(*fd, block, sizeof(block),
                                   (i * 7919ull * 4096) % file_size)
                   .ok());
    TRIO_CHECK_OK(instance.fs->Close(*fd));
  }
  return (NowSeconds() - start) / kIterations * 1e6;
}

// Kernel-FS baseline: no sharing protocol at all.
double BaselineWriteUsPerOp(uint64_t file_size) {
  FsFactoryOptions options;
  options.pool_pages = 1 << 16;
  FsInstance instance = MakeFs("NOVA", options);
  {
    Result<Fd> fd = instance.fs->Open("/shared", OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok());
    std::string chunk(1 << 20, 'x');
    for (uint64_t off = 0; off < file_size; off += chunk.size()) {
      TRIO_CHECK(instance.fs->Pwrite(*fd, chunk.data(), chunk.size(), off).ok());
    }
    TRIO_CHECK_OK(instance.fs->Close(*fd));
  }
  char block[4096];
  std::memset(block, 'y', sizeof(block));
  const double start = NowSeconds();
  for (int i = 0; i < kIterations; ++i) {
    Result<Fd> fd = instance.fs->Open("/shared", OpenFlags::ReadWrite());
    TRIO_CHECK(fd.ok());
    TRIO_CHECK(instance.fs->Pwrite(*fd, block, sizeof(block),
                                   (i * 7919ull * 4096) % file_size)
                   .ok());
    TRIO_CHECK_OK(instance.fs->Close(*fd));
  }
  return (NowSeconds() - start) / kIterations * 1e6;
}

// Two LibFSes alternately creating empty files in a shared directory of `prefill` files.
double SharedCreateUsPerOp(const std::string& fs_name, int prefill, bool two_libfses) {
  FsInstance instance = MakeFs(fs_name);
  std::unique_ptr<FsInterface> second;
  if (two_libfses && instance.kernel != nullptr) {
    second = instance.MakeSecondLibFs();
  }
  TRIO_CHECK_OK(instance.fs->Mkdir("/share"));
  for (int i = 0; i < prefill; ++i) {
    Result<Fd> fd =
        instance.fs->Open("/share/pre" + std::to_string(i), OpenFlags::CreateRw());
    TRIO_CHECK(fd.ok());
    TRIO_CHECK_OK(instance.fs->Close(*fd));
  }
  const double start = NowSeconds();
  for (int i = 0; i < kIterations; ++i) {
    FsInterface* creator =
        (two_libfses && second != nullptr && i % 2 == 1) ? second.get()
                                                         : instance.fs.get();
    Result<Fd> fd =
        creator->Open("/share/new" + std::to_string(i), OpenFlags::CreateRw());
    TRIO_CHECK(fd.ok()) << fd.status().ToString();
    TRIO_CHECK_OK(creator->Close(*fd));
  }
  return (NowSeconds() - start) / kIterations * 1e6;
}

}  // namespace
}  // namespace bench
}  // namespace trio

int main() {
  using namespace trio::bench;
  std::printf("Table 3 reproduction: cost of two apps concurrently updating one file "
              "(§6.5) [measured]\n");
  Table table("Table 3: per-op cost (us) under cross-LibFS sharing");
  table.SetHeader({"workload", "NOVA", "ArckFS", "ArckFS-trust-group"});
  table.AddRow({"4KB-write 2MB", Fmt(BaselineWriteUsPerOp(kSmallFile), 1),
                Fmt(SharedWriteUsPerOp(kSmallFile), 1),
                Fmt(TrustGroupWriteUsPerOp(kSmallFile), 1)});
  table.AddRow({"4KB-write 64MB(~1GB)", Fmt(BaselineWriteUsPerOp(kBigFile), 1),
                Fmt(SharedWriteUsPerOp(kBigFile), 1),
                Fmt(TrustGroupWriteUsPerOp(kBigFile), 1)});
  table.AddRow({"Create-10", Fmt(SharedCreateUsPerOp("NOVA", 10, false), 1),
                Fmt(SharedCreateUsPerOp("ArckFS-nd", 10, true), 1),
                Fmt(SharedCreateUsPerOp("ArckFS-nd", 10, false), 1)});
  table.AddRow({"Create-100", Fmt(SharedCreateUsPerOp("NOVA", 100, false), 1),
                Fmt(SharedCreateUsPerOp("ArckFS-nd", 100, true), 1),
                Fmt(SharedCreateUsPerOp("ArckFS-nd", 100, false), 1)});
  table.Print();
  std::printf("\nExpected shape (paper): sharing cost negligible for small files, "
              "grows with file/directory size; trust group eliminates it.\n");
  trio::bench::EmitLayerStats("bench_table3");
  return 0;
}
