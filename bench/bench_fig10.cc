// Figure 10: the customized file systems (§5, §6.6).
//   Webproxy + key-value interface: KVFS avoids file descriptors and index walks and
//   beats generic ArckFS (~1.3x in the paper).
//   Varmail with directory depth 20:  FPFS's full-path index eliminates the per-component
//   walk and beats ArckFS (~1.2x).
// Functional wall-clock on the real implementations, plus the model's view.

#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "src/baselines/fs_factory.h"
#include "src/fpfs/fpfs.h"
#include "src/kvfs/kvfs.h"
#include "src/sim/profiles.h"
#include "src/workloads/workloads.h"

namespace trio {
namespace bench {
namespace {

constexpr int kFiles = 400;
constexpr int kOpsPerRun = 4000;
constexpr size_t kValueSize = 8 << 10;  // Small files (Webproxy).

// Webproxy-with-KV-interface on KVFS: set/get of small values by key (§6.6: "We extend
// Filebench with a key-value interface to support KVFS").
double KvfsWebproxyOpsPerSec() {
  FsInstance instance = MakeFs("KVFS");
  auto* kvfs = static_cast<KvFs*>(instance.fs.get());
  std::string value(kValueSize, 'v');
  for (int i = 0; i < kFiles; ++i) {
    TRIO_CHECK_OK(kvfs->Set("obj" + std::to_string(i), value.data(), value.size()));
  }
  Rng rng(5);
  std::string buffer(kValueSize, '\0');
  const double start = NowSeconds();
  for (int i = 0; i < kOpsPerRun; ++i) {
    if (i % 6 == 0) {
      TRIO_CHECK_OK(
          kvfs->Set("obj" + std::to_string(rng.Below(kFiles)), value.data(), value.size()));
    } else {
      Result<size_t> n =
          kvfs->Get("obj" + std::to_string(rng.Below(kFiles)), buffer.data(), buffer.size());
      TRIO_CHECK(n.ok());
    }
  }
  return kOpsPerRun / (NowSeconds() - start);
}

// The same access pattern through the generic POSIX interface (open/read/close).
double PosixWebproxyOpsPerSec(const std::string& fs_name) {
  FsInstance instance = MakeFs(fs_name);
  FsInterface& fs = *instance.fs;
  TRIO_CHECK_OK(fs.Mkdir("/kv"));
  std::string value(kValueSize, 'v');
  for (int i = 0; i < kFiles; ++i) {
    Result<Fd> fd = fs.Open("/kv/obj" + std::to_string(i), OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok());
    TRIO_CHECK(fs.Pwrite(*fd, value.data(), value.size(), 0).ok());
    TRIO_CHECK_OK(fs.Close(*fd));
  }
  Rng rng(5);
  std::string buffer(kValueSize, '\0');
  const double start = NowSeconds();
  for (int i = 0; i < kOpsPerRun; ++i) {
    const std::string path = "/kv/obj" + std::to_string(rng.Below(kFiles));
    if (i % 6 == 0) {
      Result<Fd> fd = fs.Open(path, OpenFlags::CreateTrunc());
      TRIO_CHECK(fd.ok());
      TRIO_CHECK(fs.Pwrite(*fd, value.data(), value.size(), 0).ok());
      TRIO_CHECK_OK(fs.Close(*fd));
    } else {
      Result<Fd> fd = fs.Open(path, OpenFlags::ReadOnly());
      TRIO_CHECK(fd.ok());
      TRIO_CHECK(fs.Pread(*fd, buffer.data(), buffer.size(), 0).ok());
      TRIO_CHECK_OK(fs.Close(*fd));
    }
  }
  return kOpsPerRun / (NowSeconds() - start);
}

// Varmail with a 20-deep directory hierarchy (§6.6: "We create a directory depth of 20 in
// Varmail to stress path resolution").
double DeepVarmailOpsPerSec(const std::string& fs_name) {
  FsInstance instance = MakeFs(fs_name);
  FilebenchConfig config;
  config.personality = FilebenchPersonality::kVarmail;
  config.scale = 0.001;
  config.dir_depth = 20;
  FilebenchWorkload workload(*instance.fs, config);
  TRIO_CHECK_OK(workload.Prepare(1));
  constexpr int kTx = 150;
  uint64_t ops = 0;
  const double start = NowSeconds();
  for (int i = 0; i < kTx; ++i) {
    Result<WorkloadStats> stats = workload.Op(0, i);
    TRIO_CHECK(stats.ok()) << stats.status().ToString();
    ops += stats->ops;
  }
  return ops / (NowSeconds() - start);
}

void ModelSection() {
  sim::MachineModel machine;
  Table table("Fig 10 [model]: per-op advantage of the customizations (8 threads)");
  table.SetHeader({"op", "ArckFS", "custom", "speedup"});
  auto solve = [&](const std::string& fs, sim::OpProfile op) {
    sim::SolveInput input;
    input.op = op;
    input.threads = 8;
    input.nodes = 8;
    return sim::Solve(machine, input).ops_per_sec / 1e6;
  };
  const double arck_small = solve("ArckFS", sim::DataOp("ArckFS", 8 << 10, true));
  const double kvfs_small = solve("KVFS", sim::DataOp("KVFS", 8 << 10, true));
  table.AddRow({"small-file read (KVFS)", Fmt(arck_small, 2), Fmt(kvfs_small, 2),
                Fmt(kvfs_small / arck_small, 2) + "x"});
  const double arck_open =
      solve("ArckFS", sim::MetaOp("ArckFS", sim::MetaKind::kOpen, false));
  const double fpfs_open = solve("FPFS", sim::MetaOp("FPFS", sim::MetaKind::kOpen, false));
  table.AddRow({"deep-path open (FPFS)", Fmt(arck_open, 2), Fmt(fpfs_open, 2),
                Fmt(fpfs_open / arck_open, 2) + "x"});
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace trio

int main() {
  using namespace trio::bench;
  std::printf("Figure 10 reproduction: customized LibFSes (§5, §6.6)\n");
  ModelSection();

  Table measured("Fig 10 [measured]: functional runs on emulated NVM");
  measured.SetHeader({"workload", "ArckFS", "custom FS", "speedup"});
  {
    const double arck = PosixWebproxyOpsPerSec("ArckFS-nd");
    const double kvfs = KvfsWebproxyOpsPerSec();
    measured.AddRow({"Webproxy+KV (KVFS)", Fmt(arck, 0), Fmt(kvfs, 0),
                     Fmt(kvfs / arck, 2) + "x"});
  }
  {
    const double arck = DeepVarmailOpsPerSec("ArckFS-nd");
    const double fpfs = DeepVarmailOpsPerSec("FPFS");
    measured.AddRow({"Varmail depth-20 (FPFS)", Fmt(arck, 0), Fmt(fpfs, 0),
                     Fmt(fpfs / arck, 2) + "x"});
  }
  measured.Print();
  std::printf("\nExpected shape (paper): KVFS ~1.3x over ArckFS on Webproxy; FPFS ~1.2x "
              "on deep-directory Varmail.\n");
  trio::bench::EmitLayerStats("bench_fig10");
  return 0;
}
