// Ablation microbenchmarks (google-benchmark) for the design choices DESIGN.md calls
// out: the BRAVO-biased readers-writer lock vs the plain counter lock (§4.5), the
// per-directory hash table vs a radix-style index for name lookup (§6.2), the per-file
// radix tree, the MPMC delegation ring, the delegation size threshold (§4.5), multiple
// logging tails vs a single tail (§4.2), and the end-to-end create/write hot paths.

#include <benchmark/benchmark.h>

#include <map>
#include <string>
#include <memory>

#include "bench/bench_util.h"
#include "src/baselines/fs_factory.h"
#include "src/common/mpmc_ring.h"
#include "src/common/rwlock.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "src/libfs/dir_index.h"
#include "src/libfs/radix_tree.h"

namespace trio {
namespace {

// ---- Locks: BRAVO bias removes the shared-counter bounce on the read path ----

void BM_RwLockSharedAcquire(benchmark::State& state) {
  static RwLock lock;
  for (auto _ : state) {
    lock.lock_shared();
    benchmark::DoNotOptimize(&lock);
    lock.unlock_shared();
  }
}
BENCHMARK(BM_RwLockSharedAcquire)->Threads(1)->Threads(4);

void BM_BravoSharedAcquire(benchmark::State& state) {
  static BravoRwLock lock;
  for (auto _ : state) {
    lock.lock_shared();
    benchmark::DoNotOptimize(&lock);
    lock.unlock_shared();
  }
}
BENCHMARK(BM_BravoSharedAcquire)->Threads(1)->Threads(4);

// ---- Directory index: hash table vs ordered map (the NOVA-radix stand-in, §6.2) ----

void BM_DirIndexLookup(benchmark::State& state) {
  DirIndex index;
  for (int i = 0; i < 4096; ++i) {
    index.Insert("file" + std::to_string(i), DirSlot{1, 0, Ino(i + 2), false});
  }
  uint64_t i = 0;
  DirSlot slot;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Lookup("file" + std::to_string(i++ % 4096), &slot));
  }
}
BENCHMARK(BM_DirIndexLookup);

void BM_OrderedMapLookup(benchmark::State& state) {
  std::map<std::string, DirSlot> index;
  for (int i = 0; i < 4096; ++i) {
    index["file" + std::to_string(i)] = DirSlot{1, 0, Ino(i + 2), false};
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.find("file" + std::to_string(i++ % 4096)));
  }
}
BENCHMARK(BM_OrderedMapLookup);

// ---- Per-file radix tree ----

void BM_RadixLookup(benchmark::State& state) {
  PageRadixTree tree;
  for (uint64_t i = 0; i < 1 << 16; ++i) {
    tree.Insert(i, i + 100);
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup(i++ % (1 << 16)));
  }
}
BENCHMARK(BM_RadixLookup);

// ---- MPMC delegation ring ----

void BM_MpmcRingRoundTrip(benchmark::State& state) {
  static MpmcRing<uint64_t> ring(1024);
  uint64_t v = 0;
  for (auto _ : state) {
    ring.Push(v);
    uint64_t out;
    benchmark::DoNotOptimize(ring.TryPop(out));
  }
}
BENCHMARK(BM_MpmcRingRoundTrip)->Threads(1)->Threads(2);

// ---- End-to-end hot paths on the real stack ----

struct StackFixture {
  StackFixture() : instance(MakeFs("ArckFS-nd")) {
    Result<Fd> opened = instance.fs->Open("/bench", OpenFlags::CreateRw());
    TRIO_CHECK(opened.ok());
    fd = *opened;
    std::string prefill(1 << 20, 'p');
    TRIO_CHECK(instance.fs->Pwrite(fd, prefill.data(), prefill.size(), 0).ok());
  }
  FsInstance instance;
  Fd fd = -1;
};

void BM_ArckFsPwrite4K(benchmark::State& state) {
  static StackFixture fixture;
  char block[4096] = {};
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.instance.fs->Pwrite(fixture.fd, block, sizeof(block), (i++ % 256) * 4096));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ArckFsPwrite4K);

void BM_ArckFsPread4K(benchmark::State& state) {
  static StackFixture fixture;
  char block[4096];
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fixture.instance.fs->Pread(fixture.fd, block, sizeof(block), (i++ % 256) * 4096));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_ArckFsPread4K);

// Create+unlink pairs so the namespace stays bounded at benchmark scale.
void BM_ArckFsCreateUnlink(benchmark::State& state) {
  static FsInstance instance = MakeFs("ArckFS-nd", [] {
    FsFactoryOptions options;
    options.pool_pages = 1 << 16;
    return options;
  }());
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string path = "/c" + std::to_string(i++ % 64);
    Result<Fd> fd = instance.fs->Open(path, OpenFlags::CreateRw());
    TRIO_CHECK(fd.ok());
    TRIO_CHECK_OK(instance.fs->Close(*fd));
    TRIO_CHECK_OK(instance.fs->Unlink(path));
  }
}
BENCHMARK(BM_ArckFsCreateUnlink);

void BM_BaselineCreateUnlink(benchmark::State& state) {
  static FsInstance instance = MakeFs("NOVA", [] {
    FsFactoryOptions options;
    options.pool_pages = 1 << 16;
    return options;
  }());
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string path = "/c" + std::to_string(i++ % 64);
    Result<Fd> fd = instance.fs->Open(path, OpenFlags::CreateRw());
    TRIO_CHECK(fd.ok());
    TRIO_CHECK_OK(instance.fs->Close(*fd));
    TRIO_CHECK_OK(instance.fs->Unlink(path));
  }
}
BENCHMARK(BM_BaselineCreateUnlink);

// ---- Delegation threshold sweep (§4.5: why writes >= 256 B delegate) ----

void BM_DelegationThreshold(benchmark::State& state) {
  const size_t bytes = state.range(0);
  const bool delegate = state.range(1) != 0;
  static std::unique_ptr<FsInstance> direct;
  static std::unique_ptr<FsInstance> delegated;
  if (direct == nullptr) {
    FsFactoryOptions options;
    options.pool_pages = 1 << 16;
    direct = std::make_unique<FsInstance>(MakeFs("ArckFS-nd", options));
    options.arckfs_delegation = true;
    delegated = std::make_unique<FsInstance>(MakeFs("ArckFS", options));
  }
  FsInterface& fs = delegate ? *delegated->fs : *direct->fs;
  Result<Fd> fd = fs.Open("/thresh", OpenFlags::CreateRw());
  TRIO_CHECK(fd.ok());
  std::string block(bytes, 'd');
  for (auto _ : state) {
    benchmark::DoNotOptimize(fs.Pwrite(*fd, block.data(), block.size(), 0));
  }
  TRIO_CHECK_OK(fs.Close(*fd));
  state.SetBytesProcessed(state.iterations() * bytes);
}
BENCHMARK(BM_DelegationThreshold)
    ->ArgsProduct({{256, 4096, 65536, 1 << 20}, {0, 1}});

// Sweep the write-delegation threshold itself (now a DelegationConfig field plumbed
// through the factory): a fixed 16 KiB write flips between the direct and delegated
// paths as the threshold moves past it.
void BM_DelegationWriteThresholdSweep(benchmark::State& state) {
  const size_t threshold = state.range(0);
  FsFactoryOptions options;
  options.pool_pages = 1 << 16;
  options.arckfs_delegation = true;
  options.delegate_write_threshold = threshold;
  FsInstance instance = MakeFs("ArckFS", options);
  Result<Fd> fd = instance.fs->Open("/sweep", OpenFlags::CreateRw());
  TRIO_CHECK(fd.ok());
  std::string block(16 * 1024, 's');
  for (auto _ : state) {
    benchmark::DoNotOptimize(instance.fs->Pwrite(*fd, block.data(), block.size(), 0));
  }
  TRIO_CHECK_OK(instance.fs->Close(*fd));
  state.SetBytesProcessed(state.iterations() * block.size());
}
BENCHMARK(BM_DelegationWriteThresholdSweep)
    ->ArgName("write_threshold")
    ->Arg(256)
    ->Arg(4096)
    ->Arg(64 << 10)
    ->Arg(1 << 20);

}  // namespace
}  // namespace trio

// Expanded BENCHMARK_MAIN so the per-layer StatRegistry breakdown rides along with the
// benchmark's own JSON output.
int main(int argc, char** argv) {
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  trio::bench::EmitLayerStats("bench_ablation");
  return 0;
}
