// Figure 7: FxMark metadata scalability (Table 2's twelve microbenchmarks), 1-224
// threads, eight NUMA nodes. Regenerated from the calibrated model.
//
// Expected shapes (§6.4): ArckFS scales DWTL and every read-dominated benchmark linearly;
// MWCL/MWUL saturate on small non-delegated NVM writes; the -M variants dip on directory
// hash-table / logging-tail contention. The other systems are decided by the VFS: only
// MRPL and MRDL scale; create/unlink/rename serialize on dcache, inode and rename locks.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/profiles.h"

namespace trio {
namespace bench {
namespace {

struct Bench {
  const char* name;
  sim::MetaKind kind;
  bool shared;
};

const Bench kBenches[] = {
    {"DWTL", sim::MetaKind::kTruncate, false},
    {"MRPL", sim::MetaKind::kOpen, false},
    {"MRPM", sim::MetaKind::kOpen, true},
    {"MRPH", sim::MetaKind::kOpen, true},
    {"MRDL", sim::MetaKind::kReaddir, false},
    {"MRDM", sim::MetaKind::kReaddir, true},
    {"MWCL", sim::MetaKind::kCreate, false},
    {"MWCM", sim::MetaKind::kCreate, true},
    {"MWUL", sim::MetaKind::kUnlink, false},
    {"MWUM", sim::MetaKind::kUnlink, true},
    {"MWRL", sim::MetaKind::kRename, false},
    {"MWRM", sim::MetaKind::kRename, true},
};

void SweepBench(const Bench& bench) {
  sim::MachineModel machine;
  Table table(std::string("Fig 7 ") + bench.name + " (ops/us)");
  std::vector<std::string> header{"system"};
  for (int t : EightNodeThreads()) {
    header.push_back(std::to_string(t));
  }
  table.SetHeader(header);
  for (const std::string& fs : sim::MetaFigureSystems()) {
    std::vector<std::string> row{fs};
    for (int t : EightNodeThreads()) {
      sim::SolveInput input;
      input.op = sim::MetaOp(fs, bench.kind, bench.shared);
      input.threads = t;
      input.nodes = sim::NodesUsed(fs, 8);
      row.push_back(Fmt(sim::Solve(machine, input).ops_per_sec / 1e6, 2));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace trio

int main() {
  std::printf("Figure 7 reproduction: FxMark metadata scalability (§6.4) [model]\n");
  for (const auto& bench : trio::bench::kBenches) {
    trio::bench::SweepBench(bench);
  }
  trio::bench::EmitLayerStats("bench_fig7");
  return 0;
}
