// Figure 6: fio throughput of the evaluated file systems with one and eight NUMA nodes,
// 4 KiB and 2 MiB reads/writes, per-thread private 1 GiB files. Regenerated from the
// calibrated model (this box has one core and no Optane; see DESIGN.md).
//
// Expected shapes (§6.3): on one node all systems collapse for 4 KiB writes past ~8
// threads; on eight nodes only ArckFS and OdinFS keep scaling (opportunistic delegation),
// ArckFS ahead of OdinFS via direct access, up to 22x over the kernel file systems at
// 224 threads; ext4-RAID0 scales 2M reads but not 4K reads.

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/sim/profiles.h"

namespace trio {
namespace bench {
namespace {

void Sweep(const std::string& title, double bytes, bool is_read, int machine_nodes,
           const std::vector<int>& threads) {
  sim::MachineModel machine;
  Table table(title);
  std::vector<std::string> header{"system"};
  for (int t : threads) {
    header.push_back(std::to_string(t));
  }
  table.SetHeader(header);

  for (const std::string& fs : sim::DataFigureSystems()) {
    if (machine_nodes == 1 && (fs == "ext4-RAID0" || fs == "OdinFS" || fs == "ArckFS")) {
      continue;  // The paper's one-node plots show the no-delegation configurations.
    }
    if (machine_nodes == 8 && fs == "ArckFS-nd") {
      continue;
    }
    std::vector<std::string> row{fs};
    for (int t : threads) {
      sim::SolveInput input;
      input.op = sim::DataOp(fs, bytes, is_read);
      input.threads = t;
      input.nodes = sim::NodesUsed(fs, machine_nodes);
      row.push_back(Fmt(sim::Solve(machine, input).data_gib_per_sec, 1));
    }
    table.AddRow(row);
  }
  table.Print();
}

}  // namespace
}  // namespace bench
}  // namespace trio

int main() {
  using namespace trio::bench;
  std::printf("Figure 6 reproduction: fio throughput, GiB/s (§6.3) [model]\n");
  Sweep("Fig 6a: 4KB read, 1 NUMA node", 4096, true, 1, OneNodeThreads());
  Sweep("Fig 6b: 4KB write, 1 NUMA node", 4096, false, 1, OneNodeThreads());
  Sweep("Fig 6c: 2MB read, 1 NUMA node", 2 << 20, true, 1, OneNodeThreads());
  Sweep("Fig 6d: 2MB write, 1 NUMA node", 2 << 20, false, 1, OneNodeThreads());
  Sweep("Fig 6e: 4KB read, 8 NUMA nodes", 4096, true, 8, EightNodeThreads());
  Sweep("Fig 6f: 4KB write, 8 NUMA nodes", 4096, false, 8, EightNodeThreads());
  Sweep("Fig 6g: 2MB read, 8 NUMA nodes", 2 << 20, true, 8, EightNodeThreads());
  Sweep("Fig 6h: 2MB write, 8 NUMA nodes", 2 << 20, false, 8, EightNodeThreads());
  trio::bench::EmitLayerStats("bench_fig6");
  return 0;
}
