// Table 5: LevelDB (db_bench) over the evaluated file systems (§6.6) — reproduced with
// minildb, the from-scratch LSM store in src/minildb, running the same six workloads with
// 100-byte values. Functional wall-clock measurements on the emulated NVM pool; the
// paper's ordering (ArckFS > WineFS/NOVA > ext4; ArckFS-nd ahead on small-file workloads,
// behind on fill100K) is the reproduction target.
//
// Default 8000 ops per workload (enough to escape timer noise on a loaded box); set
// TRIO_DBBENCH_OPS=1000000 to match the paper's object count.

#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/baselines/fs_factory.h"
#include "src/minildb/db_bench.h"

namespace trio {
namespace bench {
namespace {

uint64_t OpsFromEnv() {
  const char* env = std::getenv("TRIO_DBBENCH_OPS");
  return env != nullptr ? std::strtoull(env, nullptr, 10) : 8000;
}

}  // namespace
}  // namespace bench
}  // namespace trio

int main() {
  using namespace trio;
  using namespace trio::bench;
  const uint64_t ops = OpsFromEnv();
  std::printf("Table 5 reproduction: minildb db_bench, 1 thread, 100B values, %llu ops "
              "(§6.6) [measured]\n",
              static_cast<unsigned long long>(ops));

  const std::vector<DbBenchWorkload> workloads = {
      DbBenchWorkload::kFill100K,   DbBenchWorkload::kFillSeq,
      DbBenchWorkload::kFillSync,   DbBenchWorkload::kFillRandom,
      DbBenchWorkload::kReadRandom, DbBenchWorkload::kDeleteRandom,
  };
  const std::vector<std::string> systems = {"ext4", "NOVA", "WineFS", "ArckFS-nd"};

  Table table("Table 5: throughput (ops/ms)");
  std::vector<std::string> header{"workload"};
  for (const std::string& fs : systems) {
    header.push_back(fs);
  }
  table.SetHeader(header);

  for (DbBenchWorkload workload : workloads) {
    // fill100K moves 100 KiB per op; scale its op count down to keep the quick run quick.
    const uint64_t n = workload == DbBenchWorkload::kFill100K ? std::max<uint64_t>(ops / 20, 50)
                                                              : ops;
    std::vector<std::string> row{DbBenchName(workload)};
    for (const std::string& fs_name : systems) {
      FsFactoryOptions options;
      options.pool_pages = 1 << 16;        // 256 MiB pool for compaction headroom.
      options.vfs_trap_cost_ns = 300;      // Model the user->kernel crossing.
      FsInstance instance = MakeFs(fs_name, options);
      Result<DbBenchResult> result = RunDbBench(*instance.fs, workload, n);
      TRIO_CHECK(result.ok()) << fs_name << "/" << DbBenchName(workload) << ": "
                              << result.status().ToString();
      row.push_back(Fmt(result->ops_per_ms(), 1));
    }
    table.AddRow(row);
  }
  table.Print();
  std::printf("\nExpected shape (paper): ArckFS beats WineFS by up to 3.1x and ext4 by "
              "1.5x-17x across the workloads.\n");
  trio::bench::EmitLayerStats("bench_table5");
  return 0;
}
