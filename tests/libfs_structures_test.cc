// Unit tests for ArckFS's auxiliary data structures (§4.2): the per-file radix tree, the
// per-directory resizable chained hash table, the fd table, the undo journal, and the
// lease caches.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <thread>

#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/libfs/dir_index.h"
#include "src/libfs/fd_table.h"
#include "src/libfs/journal.h"
#include "src/libfs/lease_cache.h"
#include "src/libfs/radix_tree.h"

namespace trio {
namespace {

TEST(RadixTreeTest, EmptyLookupsReturnZero) {
  PageRadixTree tree;
  EXPECT_EQ(tree.Lookup(0), 0u);
  EXPECT_EQ(tree.Lookup(12345), 0u);
  EXPECT_EQ(tree.Lookup(PageRadixTree::kMaxPages + 1), 0u);
}

TEST(RadixTreeTest, InsertLookupEraseRoundTrip) {
  PageRadixTree tree;
  tree.Insert(0, 100);
  tree.Insert(511, 101);
  tree.Insert(512, 102);
  tree.Insert(512 * 512 + 7, 103);
  EXPECT_EQ(tree.Lookup(0), 100u);
  EXPECT_EQ(tree.Lookup(511), 101u);
  EXPECT_EQ(tree.Lookup(512), 102u);
  EXPECT_EQ(tree.Lookup(512 * 512 + 7), 103u);
  tree.Erase(511);
  EXPECT_EQ(tree.Lookup(511), 0u);
  EXPECT_EQ(tree.Lookup(512), 102u);
}

TEST(RadixTreeTest, ClearDropsEverything) {
  PageRadixTree tree;
  for (uint64_t i = 0; i < 1000; ++i) {
    tree.Insert(i, i + 1);
  }
  tree.Clear();
  for (uint64_t i = 0; i < 1000; ++i) {
    EXPECT_EQ(tree.Lookup(i), 0u);
  }
}

TEST(RadixTreeTest, ConcurrentReadersDuringInserts) {
  PageRadixTree tree;
  std::atomic<bool> stop{false};
  std::thread writer([&] {
    for (uint64_t i = 0; i < 20000; ++i) {
      tree.Insert(i, i + 1);
    }
    stop = true;
  });
  std::thread reader([&] {
    while (!stop) {
      for (uint64_t i = 0; i < 20000; i += 97) {
        const PageNumber v = tree.Lookup(i);
        ASSERT_TRUE(v == 0 || v == i + 1);
      }
    }
  });
  writer.join();
  reader.join();
  for (uint64_t i = 0; i < 20000; ++i) {
    ASSERT_EQ(tree.Lookup(i), i + 1);
  }
}

TEST(DirIndexTest, InsertLookupErase) {
  DirIndex index;
  EXPECT_TRUE(index.Insert("a", DirSlot{10, 1, 100, false}));
  EXPECT_FALSE(index.Insert("a", DirSlot{11, 2, 101, false}));  // Duplicate.
  DirSlot slot;
  ASSERT_TRUE(index.Lookup("a", &slot));
  EXPECT_EQ(slot.page, 10u);
  EXPECT_EQ(slot.ino, 100u);
  EXPECT_TRUE(index.Erase("a"));
  EXPECT_FALSE(index.Erase("a"));
  EXPECT_FALSE(index.Lookup("a", &slot));
}

TEST(DirIndexTest, ResizePreservesEntries) {
  DirIndex index(4);  // Tiny initial table forces several doublings.
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(index.Insert("f" + std::to_string(i), DirSlot{0, 0, Ino(i + 2), false}));
  }
  EXPECT_EQ(index.Size(), 2000u);
  for (int i = 0; i < 2000; ++i) {
    DirSlot slot;
    ASSERT_TRUE(index.Lookup("f" + std::to_string(i), &slot)) << i;
    EXPECT_EQ(slot.ino, Ino(i + 2));
  }
}

TEST(DirIndexTest, ForEachVisitsAll) {
  DirIndex index;
  for (int i = 0; i < 64; ++i) {
    index.Insert("n" + std::to_string(i), DirSlot{0, 0, Ino(i + 2), i % 2 == 0});
  }
  std::set<std::string> seen;
  index.ForEach([&](const std::string& name, const DirSlot&) { seen.insert(name); });
  EXPECT_EQ(seen.size(), 64u);
}

TEST(DirIndexTest, ConcurrentMixedOperations) {
  DirIndex index(8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 2000; ++i) {
        const std::string name = "t" + std::to_string(t) + "_" + std::to_string(i);
        ASSERT_TRUE(index.Insert(name, DirSlot{0, 0, Ino(2 + t * 10000 + i), false}));
        DirSlot slot;
        ASSERT_TRUE(index.Lookup(name, &slot));
        if (i % 3 == 0) {
          ASSERT_TRUE(index.Erase(name));
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  size_t expected = 0;
  for (int t = 0; t < 4; ++t) {
    for (int i = 0; i < 2000; ++i) {
      expected += i % 3 == 0 ? 0 : 1;
    }
  }
  EXPECT_EQ(index.Size(), expected);
}

struct DummyFile {
  int value = 0;
};

TEST(FdTableTest, AllocGetRelease) {
  FdTable<DummyFile> table(64);
  auto file = std::make_shared<DummyFile>();
  Result<Fd> fd = table.Alloc(file, /*writable=*/true, /*append=*/false, /*offset=*/7);
  ASSERT_TRUE(fd.ok());
  auto* entry = table.Get(*fd);
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->offset.load(), 7u);
  EXPECT_TRUE(entry->writable);
  EXPECT_TRUE(table.Release(*fd).ok());
  EXPECT_EQ(table.Get(*fd), nullptr);
  EXPECT_TRUE(table.Release(*fd).Is(ErrorCode::kBadFd));
}

TEST(FdTableTest, SlotsRecycle) {
  FdTable<DummyFile> table(4);
  auto file = std::make_shared<DummyFile>();
  std::vector<Fd> fds;
  for (int i = 0; i < 4; ++i) {
    Result<Fd> fd = table.Alloc(file, false, false, 0);
    ASSERT_TRUE(fd.ok());
    fds.push_back(*fd);
  }
  EXPECT_FALSE(table.Alloc(file, false, false, 0).ok());  // Full.
  ASSERT_TRUE(table.Release(fds[1]).ok());
  Result<Fd> again = table.Alloc(file, false, false, 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, fds[1]);
}

TEST(FdTableTest, ReleaseAllClears) {
  FdTable<DummyFile> table(16);
  auto file = std::make_shared<DummyFile>();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(table.Alloc(file, false, false, 0).ok());
  }
  EXPECT_EQ(table.ReleaseAll(), 5u);
  EXPECT_EQ(file.use_count(), 1);
}

class JournalTest : public ::testing::Test {
 protected:
  JournalTest() : pool_(64, NvmMode::kTracking) {}
  NvmPool pool_;
};

TEST_F(JournalTest, UndoRevertsOnActiveJournal) {
  UndoJournal journal(pool_, 5);
  char* victim = pool_.PageAddress(10);
  pool_.Write(victim, "original", 8);
  pool_.PersistNow(victim, 8);
  {
    std::lock_guard<SpinLock> guard(journal.lock());
    journal.Begin();
    ASSERT_TRUE(journal.LogPreImage(victim, 8).ok());
    journal.Activate();
    pool_.Write(victim, "tampered", 8);
    pool_.PersistNow(victim, 8);
    // Crash before Deactivate: recovery must undo.
  }
  EXPECT_TRUE(UndoJournal::RecoverPage(pool_, 5));
  EXPECT_EQ(std::string(victim, 8), "original");
  EXPECT_FALSE(UndoJournal::RecoverPage(pool_, 5));  // Idempotent.
}

TEST_F(JournalTest, NoUndoAfterDeactivate) {
  UndoJournal journal(pool_, 5);
  char* victim = pool_.PageAddress(10);
  pool_.Write(victim, "original", 8);
  pool_.PersistNow(victim, 8);
  {
    std::lock_guard<SpinLock> guard(journal.lock());
    journal.Begin();
    ASSERT_TRUE(journal.LogPreImage(victim, 8).ok());
    journal.Activate();
    pool_.Write(victim, "newstate", 8);
    pool_.PersistNow(victim, 8);
    journal.Deactivate();
  }
  EXPECT_FALSE(UndoJournal::RecoverPage(pool_, 5));
  EXPECT_EQ(std::string(victim, 8), "newstate");
}

TEST_F(JournalTest, FullJournalRejectsMoreRecords) {
  UndoJournal journal(pool_, 5);
  std::lock_guard<SpinLock> guard(journal.lock());
  journal.Begin();
  Status status = OkStatus();
  int logged = 0;
  while (status.ok()) {
    status = journal.LogPreImage(pool_.PageAddress(10), 512);
    logged += status.ok() ? 1 : 0;
  }
  EXPECT_TRUE(status.Is(ErrorCode::kNoSpace));
  EXPECT_GT(logged, 4);
}

TEST(LeaseCacheTest, BatchesAndRecycles) {
  NvmPool pool(1024);
  FormatOptions options;
  options.max_inodes = 256;
  TRIO_CHECK_OK(Format(pool, options));
  KernelController kernel(pool);
  TRIO_CHECK_OK(kernel.Mount());
  LibFsId id = kernel.RegisterLibFs(LibFsOptions{});

  LeaseCache cache(kernel, id, /*page_batch=*/8, /*ino_batch=*/8);
  std::vector<PageNumber> pages;
  for (int i = 0; i < 8; ++i) {
    Result<PageNumber> page = cache.AllocPage(0);
    ASSERT_TRUE(page.ok());
    pages.push_back(*page);
  }
  // One batched kernel trap on the hot path covered all eight; the background worker
  // may add its own refill crossings, but those are off the allocating thread by
  // construction (so the raw syscall counter is not asserted here).
  EXPECT_EQ(cache.sync_refills(), 1u);

  cache.RecyclePage(pages[0]);
  Result<PageNumber> again = cache.AllocPage(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, pages[0]);

  Result<Ino> ino = cache.AllocIno();
  ASSERT_TRUE(ino.ok());
  EXPECT_EQ(kernel.StateOfIno(*ino).state, ResourceState::kLeased);
  kernel.UnregisterLibFs(id);
}

}  // namespace
}  // namespace trio
