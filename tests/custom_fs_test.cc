// Tests for the customized LibFSes (§5): KVFS (small-file get/set) and FPFS (full-path
// indexing) — including the Trio property that customization needs no privilege and does
// not affect other applications sharing the same core state.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/fpfs/fpfs.h"
#include "src/kernel/controller.h"
#include "src/kvfs/kvfs.h"

namespace trio {
namespace {

class CustomFsTest : public ::testing::Test {
 protected:
  CustomFsTest() : pool_(8192) {
    FormatOptions options;
    options.max_inodes = 4096;
    TRIO_CHECK_OK(Format(pool_, options));
    kernel_ = std::make_unique<KernelController>(pool_);
    TRIO_CHECK_OK(kernel_->Mount());
  }

  NvmPool pool_;
  std::unique_ptr<KernelController> kernel_;
};

TEST_F(CustomFsTest, KvfsSetGetRoundTrip) {
  KvFs kv(*kernel_);
  ASSERT_TRUE(kv.Set("alpha", "value-1", 7).ok());
  char buf[32] = {};
  Result<size_t> n = kv.Get("alpha", buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, *n), "value-1");
}

TEST_F(CustomFsTest, KvfsOverwriteShrinksAndGrows) {
  KvFs kv(*kernel_);
  ASSERT_TRUE(kv.Set("k", std::string(5000, 'a').data(), 5000).ok());
  ASSERT_TRUE(kv.Set("k", "tiny", 4).ok());
  char buf[16];
  Result<size_t> n = kv.Get("k", buf, sizeof(buf));
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 4u);
  EXPECT_EQ(std::string(buf, 4), "tiny");
  EXPECT_EQ(*kv.SizeOf("k"), 4u);
}

TEST_F(CustomFsTest, KvfsMaxValueEnforced) {
  KvFs kv(*kernel_);
  std::string big(KvFs::kMaxValueSize, 'b');
  EXPECT_TRUE(kv.Set("max", big.data(), big.size()).ok());
  std::string too_big(KvFs::kMaxValueSize + 1, 'b');
  EXPECT_TRUE(kv.Set("max", too_big.data(), too_big.size()).Is(ErrorCode::kTooLarge));
  std::string out(KvFs::kMaxValueSize, '\0');
  Result<size_t> n = kv.Get("max", out.data(), out.size());
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, KvFs::kMaxValueSize);
  EXPECT_EQ(out, big);
}

TEST_F(CustomFsTest, KvfsMissingKey) {
  KvFs kv(*kernel_);
  char buf[8];
  EXPECT_TRUE(kv.Get("ghost", buf, sizeof(buf)).status().Is(ErrorCode::kNotFound));
}

TEST_F(CustomFsTest, KvfsDelete) {
  KvFs kv(*kernel_);
  ASSERT_TRUE(kv.Set("d", "x", 1).ok());
  ASSERT_TRUE(kv.Delete("d").ok());
  char buf[4];
  EXPECT_TRUE(kv.Get("d", buf, 4).status().Is(ErrorCode::kNotFound));
  EXPECT_TRUE(kv.Delete("d").Is(ErrorCode::kNotFound));
}

TEST_F(CustomFsTest, KvfsManySmallKeys) {
  KvFs kv(*kernel_);
  for (int i = 0; i < 500; ++i) {
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(kv.Set("key" + std::to_string(i), value.data(), value.size()).ok());
  }
  for (int i = 0; i < 500; ++i) {
    char buf[16];
    Result<size_t> n = kv.Get("key" + std::to_string(i), buf, sizeof(buf));
    ASSERT_TRUE(n.ok());
    EXPECT_EQ(std::string(buf, *n), "v" + std::to_string(i));
  }
}

TEST_F(CustomFsTest, KvfsRejectsInvalidKeys) {
  KvFs kv(*kernel_);
  EXPECT_TRUE(kv.Set("a/b", "x", 1).Is(ErrorCode::kInvalidArgument));
  EXPECT_TRUE(kv.Set("", "x", 1).Is(ErrorCode::kInvalidArgument));
}

TEST_F(CustomFsTest, KvfsFilesVisibleToPlainArckFs) {
  // The customization changed only auxiliary state: a generic ArckFS LibFS reads the same
  // files through the shared core state (§5 / §3.2 file sharing).
  {
    KvFs kv(*kernel_);
    ASSERT_TRUE(kv.Set("shared", "interop!", 8).ok());
  }  // KvFs unregisters; its write grants verify and reconcile.

  ArckFs plain(*kernel_);
  Result<Fd> fd = plain.Open("/kv/shared", OpenFlags::ReadOnly());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  char buf[8];
  ASSERT_TRUE(plain.Pread(*fd, buf, 8, 0).ok());
  EXPECT_EQ(std::string(buf, 8), "interop!");
  ASSERT_TRUE(plain.Close(*fd).ok());
}

TEST_F(CustomFsTest, ArckFsFilesVisibleToKvfs) {
  {
    ArckFs plain(*kernel_);
    ASSERT_TRUE(plain.Mkdir("/kv").ok());
    Result<Fd> fd = plain.Open("/kv/pre", OpenFlags::CreateRw());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(plain.Pwrite(*fd, "older", 5, 0).ok());
    ASSERT_TRUE(plain.Close(*fd).ok());
  }
  KvFs kv(*kernel_);
  char buf[8];
  Result<size_t> n = kv.Get("pre", buf, sizeof(buf));
  ASSERT_TRUE(n.ok()) << n.status().ToString();
  EXPECT_EQ(std::string(buf, *n), "older");
}

TEST_F(CustomFsTest, FpfsResolvesDeepPathsViaCache) {
  FpFs fs(*kernel_);
  std::string path;
  for (int depth = 0; depth < 20; ++depth) {
    path += "/d" + std::to_string(depth);
    ASSERT_TRUE(fs.Mkdir(path).ok());
  }
  const std::string file = path + "/leaf";
  Result<Fd> fd = fs.Open(file, OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs.Pwrite(*fd, "deep", 4, 0).ok());
  ASSERT_TRUE(fs.Close(*fd).ok());

  const uint64_t hits_before = fs.path_cache_hits();
  for (int i = 0; i < 10; ++i) {
    Result<StatInfo> info = fs.Stat(file);
    ASSERT_TRUE(info.ok());
    EXPECT_EQ(info->size, 4u);
  }
  EXPECT_GE(fs.path_cache_hits(), hits_before + 10);
  EXPECT_GT(fs.PathCacheSize(), 0u);
}

TEST_F(CustomFsTest, FpfsRenameInvalidatesCache) {
  FpFs fs(*kernel_);
  ASSERT_TRUE(fs.Mkdir("/a").ok());
  Result<Fd> fd = fs.Open("/a/f", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs.Close(*fd).ok());
  ASSERT_TRUE(fs.Stat("/a/f").ok());
  EXPECT_GT(fs.PathCacheSize(), 0u);
  ASSERT_TRUE(fs.Rename("/a/f", "/a/g").ok());
  EXPECT_EQ(fs.PathCacheSize(), 0u);
  EXPECT_TRUE(fs.Stat("/a/g").ok());
  EXPECT_TRUE(fs.Stat("/a/f").status().Is(ErrorCode::kNotFound));
}

TEST_F(CustomFsTest, FpfsBehavesAsPosixFs) {
  // Everything outside resolution is inherited: run a generic workload.
  FpFs fs(*kernel_);
  ASSERT_TRUE(fs.Mkdir("/x").ok());
  Result<Fd> fd = fs.Open("/x/data", OpenFlags::CreateTrunc());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs.Pwrite(*fd, "abc", 3, 0).ok());
  ASSERT_TRUE(fs.Close(*fd).ok());
  EXPECT_EQ(fs.Stat("/x/data")->size, 3u);
  ASSERT_TRUE(fs.Unlink("/x/data").ok());
  ASSERT_TRUE(fs.Rmdir("/x").ok());
}

TEST_F(CustomFsTest, CustomAndGenericLibFsesCoexist) {
  // Three differently customized LibFSes over one kernel: no special privilege was needed
  // for any of them, and none affected the others (per-application customization, §5).
  KvFs kv(*kernel_);
  FpFs fp(*kernel_);
  ArckFs plain(*kernel_);

  ASSERT_TRUE(kv.Set("k", "kvfs", 4).ok());
  ASSERT_TRUE(fp.Mkdir("/deep").ok());
  Result<Fd> fd = plain.Open("/plain.txt", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(plain.Close(*fd).ok());

  EXPECT_TRUE(plain.Stat("/deep").ok());
  EXPECT_TRUE(fp.Stat("/plain.txt").ok());
}

}  // namespace
}  // namespace trio
