// End-to-end tests of ArckFS over the full Trio stack: kernel controller + verifier +
// LibFS on the emulated NVM pool.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "tests/test_seed.h"

namespace trio {
namespace {

class ArckFsTest : public ::testing::Test {
 protected:
  ArckFsTest() : pool_(8192) {
    FormatOptions options;
    options.max_inodes = 4096;
    TRIO_CHECK_OK(Format(pool_, options));
    kernel_ = std::make_unique<KernelController>(pool_);
    TRIO_CHECK_OK(kernel_->Mount());
    fs_ = std::make_unique<ArckFs>(*kernel_);
  }

  ~ArckFsTest() override {
    fs_.reset();
    TRIO_CHECK_OK(kernel_->Unmount());
  }

  std::string ReadAll(const std::string& path) {
    Result<Fd> fd = fs_->Open(path, OpenFlags::ReadOnly());
    TRIO_CHECK(fd.ok()) << fd.status().ToString();
    Result<StatInfo> info = fs_->Stat(path);
    TRIO_CHECK(info.ok());
    std::string out(info->size, '\0');
    Result<size_t> n = fs_->Pread(*fd, out.data(), out.size(), 0);
    TRIO_CHECK(n.ok());
    out.resize(*n);
    TRIO_CHECK_OK(fs_->Close(*fd));
    return out;
  }

  void WriteFile(const std::string& path, const std::string& data) {
    Result<Fd> fd = fs_->Open(path, OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok()) << fd.status().ToString();
    Result<size_t> n = fs_->Pwrite(*fd, data.data(), data.size(), 0);
    TRIO_CHECK(n.ok()) << n.status().ToString();
    TRIO_CHECK_OK(fs_->Close(*fd));
  }

  NvmPool pool_;
  std::unique_ptr<KernelController> kernel_;
  std::unique_ptr<ArckFs> fs_;
};

TEST_F(ArckFsTest, CreateWriteReadBack) {
  WriteFile("/hello.txt", "hello, trio!");
  EXPECT_EQ(ReadAll("/hello.txt"), "hello, trio!");
}

TEST_F(ArckFsTest, OpenMissingFails) {
  EXPECT_TRUE(fs_->Open("/nope", OpenFlags::ReadOnly()).status().Is(ErrorCode::kNotFound));
}

TEST_F(ArckFsTest, ExclusiveCreateFailsOnExisting) {
  WriteFile("/f", "x");
  OpenFlags flags = OpenFlags::CreateRw();
  flags.exclusive = true;
  EXPECT_TRUE(fs_->Open("/f", flags).status().Is(ErrorCode::kExists));
}

TEST_F(ArckFsTest, StatReportsSizeAndType) {
  WriteFile("/f", std::string(5000, 'a'));
  Result<StatInfo> info = fs_->Stat("/f");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, 5000u);
  EXPECT_TRUE(info->IsRegular());
  EXPECT_FALSE(info->IsDirectory());

  Result<StatInfo> root = fs_->Stat("/");
  ASSERT_TRUE(root.ok());
  EXPECT_TRUE(root->IsDirectory());
  EXPECT_EQ(root->ino, kRootIno);
}

TEST_F(ArckFsTest, CursorReadWrite) {
  Result<Fd> fd = fs_->Open("/c", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(*fs_->Write(*fd, "abc", 3), 3u);
  EXPECT_EQ(*fs_->Write(*fd, "def", 3), 3u);
  ASSERT_TRUE(fs_->Seek(*fd, 0).ok());
  char buf[7] = {};
  EXPECT_EQ(*fs_->Read(*fd, buf, 6), 6u);
  EXPECT_STREQ(buf, "abcdef");
  EXPECT_TRUE(fs_->Close(*fd).ok());
}

TEST_F(ArckFsTest, AppendMode) {
  WriteFile("/log", "one");
  OpenFlags flags = OpenFlags::ReadWrite();
  flags.append = true;
  Result<Fd> fd = fs_->Open("/log", flags);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(*fs_->Write(*fd, "two", 3), 3u);
  EXPECT_TRUE(fs_->Close(*fd).ok());
  EXPECT_EQ(ReadAll("/log"), "onetwo");
}

TEST_F(ArckFsTest, LargeFileCrossesIndexPages) {
  // > 511 data pages forces a second index page (2.5 MiB > 511 * 4 KiB).
  const size_t size = 650 * kPageSize;
  std::string data(size, '\0');
  Rng rng(TestSeed());
  for (auto& c : data) {
    c = static_cast<char>('a' + rng.Below(26));
  }
  WriteFile("/big", data);
  EXPECT_EQ(ReadAll("/big"), data);
}

TEST_F(ArckFsTest, SparseWriteReadsZerosInHoles) {
  Result<Fd> fd = fs_->Open("/sparse", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  // Write at 1 MiB, leaving a hole below.
  ASSERT_TRUE(fs_->Pwrite(*fd, "tail", 4, 1 << 20).ok());
  char buf[16];
  Result<size_t> n = fs_->Pread(*fd, buf, 16, 4096);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 16u);
  for (char c : std::string(buf, 16)) {
    EXPECT_EQ(c, 0);
  }
  n = fs_->Pread(*fd, buf, 4, 1 << 20);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, 4), "tail");
  EXPECT_TRUE(fs_->Close(*fd).ok());
}

TEST_F(ArckFsTest, ReadPastEofReturnsShort) {
  WriteFile("/short", "12345");
  Result<Fd> fd = fs_->Open("/short", OpenFlags::ReadOnly());
  ASSERT_TRUE(fd.ok());
  char buf[100];
  EXPECT_EQ(*fs_->Pread(*fd, buf, 100, 0), 5u);
  EXPECT_EQ(*fs_->Pread(*fd, buf, 100, 5), 0u);
  EXPECT_EQ(*fs_->Pread(*fd, buf, 100, 500), 0u);
  EXPECT_TRUE(fs_->Close(*fd).ok());
}

TEST_F(ArckFsTest, OverwriteInPlace) {
  WriteFile("/ow", "aaaaaaaaaa");
  Result<Fd> fd = fs_->Open("/ow", OpenFlags::ReadWrite());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs_->Pwrite(*fd, "BB", 2, 4).ok());
  EXPECT_TRUE(fs_->Close(*fd).ok());
  EXPECT_EQ(ReadAll("/ow"), "aaaaBBaaaa");
}

TEST_F(ArckFsTest, TruncateShrinkAndGrow) {
  WriteFile("/t", "0123456789");
  ASSERT_TRUE(fs_->Truncate("/t", 4).ok());
  EXPECT_EQ(ReadAll("/t"), "0123");
  ASSERT_TRUE(fs_->Truncate("/t", 8).ok());
  std::string grown = ReadAll("/t");
  ASSERT_EQ(grown.size(), 8u);
  EXPECT_EQ(grown.substr(0, 4), "0123");
  EXPECT_EQ(grown.substr(4), std::string(4, '\0'));  // Zero-padded, not stale "4567".
}

TEST_F(ArckFsTest, TruncateAcrossPages) {
  WriteFile("/tp", std::string(3 * kPageSize, 'x'));
  ASSERT_TRUE(fs_->Truncate("/tp", kPageSize + 10).ok());
  Result<StatInfo> info = fs_->Stat("/tp");
  EXPECT_EQ(info->size, kPageSize + 10);
  std::string data = ReadAll("/tp");
  EXPECT_EQ(data, std::string(kPageSize + 10, 'x'));
}

TEST_F(ArckFsTest, MkdirAndNest) {
  ASSERT_TRUE(fs_->Mkdir("/a").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b").ok());
  ASSERT_TRUE(fs_->Mkdir("/a/b/c").ok());
  WriteFile("/a/b/c/deep.txt", "deep");
  EXPECT_EQ(ReadAll("/a/b/c/deep.txt"), "deep");
  Result<StatInfo> info = fs_->Stat("/a/b");
  ASSERT_TRUE(info.ok());
  EXPECT_TRUE(info->IsDirectory());
}

TEST_F(ArckFsTest, MkdirExistingFails) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  EXPECT_TRUE(fs_->Mkdir("/d").Is(ErrorCode::kExists));
}

TEST_F(ArckFsTest, ReadDirListsEntries) {
  ASSERT_TRUE(fs_->Mkdir("/dir").ok());
  WriteFile("/dir/f1", "1");
  WriteFile("/dir/f2", "2");
  ASSERT_TRUE(fs_->Mkdir("/dir/sub").ok());
  Result<std::vector<DirEntryInfo>> entries = fs_->ReadDir("/dir");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);
  int dirs = 0;
  for (const auto& e : *entries) {
    dirs += e.is_dir ? 1 : 0;
  }
  EXPECT_EQ(dirs, 1);
}

TEST_F(ArckFsTest, UnlinkRemovesFile) {
  WriteFile("/u", "x");
  ASSERT_TRUE(fs_->Unlink("/u").ok());
  EXPECT_TRUE(fs_->Stat("/u").status().Is(ErrorCode::kNotFound));
  EXPECT_TRUE(fs_->Unlink("/u").Is(ErrorCode::kNotFound));
}

TEST_F(ArckFsTest, UnlinkDirectoryFails) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  EXPECT_TRUE(fs_->Unlink("/d").Is(ErrorCode::kIsDir));
}

TEST_F(ArckFsTest, RmdirRequiresEmpty) {
  ASSERT_TRUE(fs_->Mkdir("/d").ok());
  WriteFile("/d/f", "x");
  EXPECT_TRUE(fs_->Rmdir("/d").Is(ErrorCode::kNotEmpty));
  ASSERT_TRUE(fs_->Unlink("/d/f").ok());
  EXPECT_TRUE(fs_->Rmdir("/d").ok());
  EXPECT_TRUE(fs_->Stat("/d").status().Is(ErrorCode::kNotFound));
}

TEST_F(ArckFsTest, RmdirOnFileFails) {
  WriteFile("/f", "x");
  EXPECT_TRUE(fs_->Rmdir("/f").Is(ErrorCode::kNotDir));
}

TEST_F(ArckFsTest, RenameSameDirectory) {
  WriteFile("/old", "payload");
  ASSERT_TRUE(fs_->Rename("/old", "/new").ok());
  EXPECT_TRUE(fs_->Stat("/old").status().Is(ErrorCode::kNotFound));
  EXPECT_EQ(ReadAll("/new"), "payload");
}

TEST_F(ArckFsTest, RenameAcrossDirectories) {
  ASSERT_TRUE(fs_->Mkdir("/src").ok());
  ASSERT_TRUE(fs_->Mkdir("/dst").ok());
  WriteFile("/src/f", "moved");
  ASSERT_TRUE(fs_->Rename("/src/f", "/dst/g").ok());
  EXPECT_TRUE(fs_->Stat("/src/f").status().Is(ErrorCode::kNotFound));
  EXPECT_EQ(ReadAll("/dst/g"), "moved");
}

TEST_F(ArckFsTest, RenameOverwritesExisting) {
  WriteFile("/a", "AAA");
  WriteFile("/b", "BBB");
  ASSERT_TRUE(fs_->Rename("/a", "/b").ok());
  EXPECT_TRUE(fs_->Stat("/a").status().Is(ErrorCode::kNotFound));
  EXPECT_EQ(ReadAll("/b"), "AAA");
}

TEST_F(ArckFsTest, RenameMissingSourceFails) {
  EXPECT_TRUE(fs_->Rename("/ghost", "/x").Is(ErrorCode::kNotFound));
}

TEST_F(ArckFsTest, CrossDirRenameOfNonEmptyDirRejected) {
  ASSERT_TRUE(fs_->Mkdir("/p").ok());
  ASSERT_TRUE(fs_->Mkdir("/q").ok());
  ASSERT_TRUE(fs_->Mkdir("/p/d").ok());
  WriteFile("/p/d/f", "x");
  EXPECT_TRUE(fs_->Rename("/p/d", "/q/d").Is(ErrorCode::kNotSupported));
  // Empty directories may move.
  ASSERT_TRUE(fs_->Unlink("/p/d/f").ok());
  EXPECT_TRUE(fs_->Rename("/p/d", "/q/d").ok());
  EXPECT_TRUE(fs_->Stat("/q/d")->IsDirectory());
}

TEST_F(ArckFsTest, FsyncIsNoopAndOk) {
  Result<Fd> fd = fs_->Open("/f", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(fs_->Fsync(*fd).ok());
  EXPECT_TRUE(fs_->Close(*fd).ok());
  EXPECT_TRUE(fs_->Fsync(*fd).Is(ErrorCode::kBadFd));
}

TEST_F(ArckFsTest, ManyFilesInOneDirectory) {
  ASSERT_TRUE(fs_->Mkdir("/many").ok());
  for (int i = 0; i < 300; ++i) {
    WriteFile("/many/file" + std::to_string(i), std::to_string(i));
  }
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(ReadAll("/many/file" + std::to_string(i)), std::to_string(i));
  }
  Result<std::vector<DirEntryInfo>> entries = fs_->ReadDir("/many");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 300u);
}

TEST_F(ArckFsTest, CreateDeleteRecyclesSpace) {
  // Churn must not exhaust the pool: deleted locally-created files recycle their leases.
  for (int round = 0; round < 50; ++round) {
    WriteFile("/churn", std::string(64 * kPageSize, 'x'));
    ASSERT_TRUE(fs_->Unlink("/churn").ok());
  }
}

TEST_F(ArckFsTest, InvalidPathsRejected) {
  EXPECT_TRUE(fs_->Stat("relative").status().Is(ErrorCode::kInvalidArgument));
  EXPECT_TRUE(fs_->Mkdir("/" + std::string(kMaxNameLen + 5, 'n')).Is(
      ErrorCode::kNameTooLong));
  EXPECT_TRUE(fs_->Stat("/a/../../x").status().Is(ErrorCode::kInvalidArgument));
}

TEST_F(ArckFsTest, ChmodUpdatesMode) {
  WriteFile("/perm", "x");
  ASSERT_TRUE(fs_->Chmod("/perm", 0600).ok());
  // Cached dirent copy was refreshed by the kernel.
  EXPECT_EQ(fs_->Stat("/perm")->mode & kModePermMask, 0600u);
}

TEST_F(ArckFsTest, PersistsAcrossRemount) {
  ASSERT_TRUE(fs_->Mkdir("/keep").ok());
  WriteFile("/keep/data", "persistent");
  // Clean shutdown.
  fs_.reset();
  TRIO_CHECK_OK(kernel_->Unmount());
  kernel_.reset();

  kernel_ = std::make_unique<KernelController>(pool_);
  ASSERT_TRUE(kernel_->Mount().ok());
  EXPECT_FALSE(kernel_->NeedsRecovery());
  fs_ = std::make_unique<ArckFs>(*kernel_);
  EXPECT_EQ(ReadAll("/keep/data"), "persistent");
  Result<std::vector<DirEntryInfo>> entries = fs_->ReadDir("/keep");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 1u);
}

TEST_F(ArckFsTest, ConcurrentDisjointWritersOneFile) {
  WriteFile("/shared", std::string(8 * kPageSize, '-'));
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Result<Fd> fd = fs_->Open("/shared", OpenFlags::ReadWrite());
      ASSERT_TRUE(fd.ok());
      std::string mine(2 * kPageSize, static_cast<char>('A' + t));
      ASSERT_TRUE(fs_->Pwrite(*fd, mine.data(), mine.size(), t * 2 * kPageSize).ok());
      ASSERT_TRUE(fs_->Close(*fd).ok());
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  std::string data = ReadAll("/shared");
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(data[t * 2 * kPageSize], 'A' + t);
    EXPECT_EQ(data[(t + 1) * 2 * kPageSize - 1], 'A' + t);
  }
}

TEST_F(ArckFsTest, ConcurrentCreatesInOneDirectory) {
  ASSERT_TRUE(fs_->Mkdir("/conc").ok());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        std::string path = "/conc/t" + std::to_string(t) + "_" + std::to_string(i);
        Result<Fd> fd = fs_->Open(path, OpenFlags::CreateRw());
        ASSERT_TRUE(fd.ok()) << fd.status().ToString();
        ASSERT_TRUE(fs_->Close(*fd).ok());
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  Result<std::vector<DirEntryInfo>> entries = fs_->ReadDir("/conc");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), static_cast<size_t>(kThreads * kPerThread));
}

TEST_F(ArckFsTest, ConcurrentSameNameCreateExclusive) {
  ASSERT_TRUE(fs_->Mkdir("/race").ok());
  std::atomic<int> winners{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      OpenFlags flags = OpenFlags::CreateRw();
      flags.exclusive = true;
      Result<Fd> fd = fs_->Open("/race/one", flags);
      if (fd.ok()) {
        winners.fetch_add(1);
        ASSERT_TRUE(fs_->Close(*fd).ok());
      } else {
        EXPECT_TRUE(fd.status().Is(ErrorCode::kExists));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(winners.load(), 1);
}

// ---- Sharing between two LibFSes (the Trio handoff protocol, §3.2/§4.3) ----

TEST_F(ArckFsTest, TwoLibFsesShareAFile) {
  ArckFs other(*kernel_);
  WriteFile("/shared", "from fs1");
  // Writer must release before the other LibFS maps; the revoke path handles it even if
  // we do not release explicitly.
  Result<Fd> fd = other.Open("/shared", OpenFlags::ReadOnly());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  char buf[16] = {};
  Result<size_t> n = other.Pread(*fd, buf, sizeof(buf), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buf, *n), "from fs1");
  ASSERT_TRUE(other.Close(*fd).ok());
  EXPECT_GE(kernel_->stats().verifications.load(), 1u);
}

TEST_F(ArckFsTest, ExclusiveWriteHandoff) {
  ArckFs other(*kernel_);
  WriteFile("/pingpong", "v1");

  Result<Fd> fd2 = other.Open("/pingpong", OpenFlags::ReadWrite());
  ASSERT_TRUE(fd2.ok());
  ASSERT_TRUE(other.Pwrite(*fd2, "v2", 2, 0).ok());
  ASSERT_TRUE(other.Close(*fd2).ok());

  // Back to fs1: the kernel revokes fs2's grant, verifies, and remaps for us.
  EXPECT_EQ(ReadAll("/pingpong"), "v2");
  EXPECT_GE(kernel_->stats().verifications.load(), 2u);
  EXPECT_EQ(kernel_->stats().verify_failures.load(), 0u);
}

TEST_F(ArckFsTest, WriterSeesOtherWritersCreations) {
  ArckFs other(*kernel_);
  ASSERT_TRUE(fs_->Mkdir("/box").ok());
  WriteFile("/box/from1", "1");

  Result<Fd> fd = other.Open("/box/from2", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(other.Pwrite(*fd, "2", 1, 0).ok());
  ASSERT_TRUE(other.Close(*fd).ok());

  Result<std::vector<DirEntryInfo>> entries = fs_->ReadDir("/box");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
  EXPECT_EQ(ReadAll("/box/from2"), "2");
}

TEST_F(ArckFsTest, TrustGroupSharesOneLibFsWithoutVerification) {
  // Two "processes" in one trust group = two threads on one ArckFs (§3.2).
  WriteFile("/tg", "x");
  const uint64_t verifications_before = kernel_->stats().verifications.load();
  std::thread peer([&] {
    Result<Fd> fd = fs_->Open("/tg", OpenFlags::ReadWrite());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs_->Pwrite(*fd, "y", 1, 0).ok());
    ASSERT_TRUE(fs_->Close(*fd).ok());
  });
  peer.join();
  EXPECT_EQ(ReadAll("/tg"), "y");
  // No write-grant handoff happened, so no additional verification ran.
  EXPECT_EQ(kernel_->stats().verifications.load(), verifications_before);
}

TEST_F(ArckFsTest, ReleaseFileForcesVerification) {
  WriteFile("/rel", "data");
  const uint64_t before = kernel_->stats().verifications.load();
  ASSERT_TRUE(fs_->ReleaseFile("/rel").ok());
  // Parent reconcile + the file's own verification.
  EXPECT_GE(kernel_->stats().verifications.load(), before + 1);
  EXPECT_EQ(ReadAll("/rel"), "data");  // Remaps fine afterwards.
}

TEST_F(ArckFsTest, CommitRefreshesCheckpoint) {
  WriteFile("/cm", "v1");
  EXPECT_TRUE(fs_->Commit("/cm").ok());
}

TEST_F(ArckFsTest, RenameOntoNonEmptyDirFails) {
  ASSERT_TRUE(fs_->Mkdir("/empty").ok());
  ASSERT_TRUE(fs_->Mkdir("/full").ok());
  WriteFile("/full/f", "x");
  EXPECT_TRUE(fs_->Rename("/empty", "/full").Is(ErrorCode::kNotEmpty));
  // The failed rename must not have disturbed either directory.
  EXPECT_TRUE(fs_->Stat("/empty")->IsDirectory());
  EXPECT_EQ(ReadAll("/full/f"), "x");
  // Once the destination is empty, the overwriting rename goes through.
  ASSERT_TRUE(fs_->Unlink("/full/f").ok());
  EXPECT_TRUE(fs_->Rename("/empty", "/full").ok());
  EXPECT_TRUE(fs_->Stat("/empty").status().Is(ErrorCode::kNotFound));
  EXPECT_TRUE(fs_->Stat("/full")->IsDirectory());
}

TEST_F(ArckFsTest, ConcurrentAppendsLoseNoRecords) {
  // Regression for the O_APPEND lost-update race: the append offset must be derived from
  // the durable size INSIDE the inode lock, not from a pre-lock read, or two appenders
  // can land on the same offset and one record overwrites the other.
  constexpr int kWriters = 2;
  constexpr int kRecords = 64;
  constexpr size_t kRecordSize = 100;
  {
    Result<Fd> fd = fs_->Open("/applog", OpenFlags::CreateRw());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fs_->Close(*fd).ok());
  }
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      OpenFlags flags = OpenFlags::ReadWrite();
      flags.append = true;
      Result<Fd> fd = fs_->Open("/applog", flags);
      ASSERT_TRUE(fd.ok());
      const std::string record(kRecordSize, static_cast<char>('a' + w));
      for (int i = 0; i < kRecords; ++i) {
        Result<size_t> n = fs_->Write(*fd, record.data(), record.size());
        ASSERT_TRUE(n.ok());
        ASSERT_EQ(*n, kRecordSize);
      }
      ASSERT_TRUE(fs_->Close(*fd).ok());
    });
  }
  for (auto& t : writers) {
    t.join();
  }
  const std::string data = ReadAll("/applog");
  ASSERT_EQ(data.size(), static_cast<size_t>(kWriters) * kRecords * kRecordSize);
  // Every record landed whole: each record-sized slot is homogeneous, and each writer's
  // full output is present.
  size_t per_writer[kWriters] = {};
  for (size_t off = 0; off < data.size(); off += kRecordSize) {
    const char c = data[off];
    ASSERT_GE(c, 'a');
    ASSERT_LT(c, 'a' + kWriters);
    for (size_t i = 1; i < kRecordSize; ++i) {
      ASSERT_EQ(data[off + i], c) << "torn record at offset " << off + i;
    }
    ++per_writer[c - 'a'];
  }
  for (int w = 0; w < kWriters; ++w) {
    EXPECT_EQ(per_writer[w], static_cast<size_t>(kRecords)) << "writer " << w;
  }
}

TEST_F(ArckFsTest, SharedFdCursorAdvancesByCompletedBytes) {
  // Regression for the shared-fd cursor race: concurrent Write()s through one fd must
  // advance the cursor with fetch_add of the completed byte count; a load→store update
  // can lose a concurrent writer's advancement. With the fix the cursor equals the total
  // bytes written no matter the interleaving, so a final probe write lands exactly there.
  constexpr int kThreads = 2;
  constexpr int kWritesPerThread = 500;
  Result<Fd> fd = fs_->Open("/shared", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      const char buf[4] = {'w', 'w', 'w', 'w'};
      for (int i = 0; i < kWritesPerThread; ++i) {
        Result<size_t> n = fs_->Write(*fd, buf, sizeof(buf));
        ASSERT_TRUE(n.ok());
        ASSERT_EQ(*n, sizeof(buf));
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  const size_t total = static_cast<size_t>(kThreads) * kWritesPerThread * 4;
  ASSERT_TRUE(fs_->Write(*fd, "PROBE", 5).ok());
  Result<StatInfo> info = fs_->Stat("/shared");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->size, total + 5);
  char probe[6] = {};
  ASSERT_TRUE(fs_->Pread(*fd, probe, 5, total).ok());
  EXPECT_STREQ(probe, "PROBE");
  ASSERT_TRUE(fs_->Close(*fd).ok());
}

}  // namespace
}  // namespace trio
