// Fleet-scale tests for the sharded kernel controller: a ctest-sized fleet smoke
// (64 LibFS tenants, Zipfian-shared files, concurrent cross-shard renames) plus one
// shard-canary regression test per lock bug fixed during the shard refactor:
//
//   * RevokeAfterHolderTeardownCompletes — the MapFile revoke livelock: a holder whose
//     node state was torn down before the kernel learned of its implicit grant used to
//     no-op every revoke callback, looping the mapper forever.
//   * UncooperativeHolderIsForceReleasedAfterCompletedRevoke — the kernel-side half of
//     the same bug: a completed revoke that does not dislodge the holder must escalate
//     to ForceRelease instead of re-issuing callbacks past the lease deadline.
//   * StaleGrantInvalidatedOnChmod — the seqlock grant cache must not serve a grant
//     that a permission change has revoked (write-through invalidation on Chmod).
//   * RequarantineKeepsEvictionOrder — the O(1) FIFO quarantine eviction must skip
//     stale sequence entries left behind when the same ino is quarantined twice.
//
// Randomized parts derive from TRIO_TEST_SEED (tests/test_seed.h) and replay exactly.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/attacks/attacks.h"
#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "src/workloads/workloads.h"
#include "tests/test_seed.h"

namespace trio {
namespace {

class FleetTest : public ::testing::Test {
 protected:
  void Build(size_t shards, bool lockfree = true) {
    pool_ = std::make_unique<NvmPool>(1 << 13);
    FormatOptions options;
    options.max_inodes = 4096;
    TRIO_CHECK_OK(Format(*pool_, options));
    KernelConfig config;
    config.controller_shards = shards;
    config.lockfree_lookup = lockfree;
    kernel_ = std::make_unique<KernelController>(*pool_, config);
    TRIO_CHECK_OK(kernel_->Mount());
  }

  std::unique_ptr<NvmPool> pool_;
  std::unique_ptr<KernelController> kernel_;
};

// ---- Fleet smoke: 64 tenants, Zipfian sharing, renames across the shard map ----

TEST_F(FleetTest, SixtyFourTenantsZipfianSharing) {
  Build(8);
  FleetConfig config;
  config.tenants = 64;
  config.shared_files = 64;
  config.seed = TestSeed();
  FleetWorkload fleet(*kernel_, config);
  ASSERT_TRUE(fleet.Prepare().ok());

  constexpr int kThreads = 4;
  constexpr uint64_t kOpsPerTenant = 20;
  const int per_thread = config.tenants / kThreads;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  std::vector<Status> first_failure(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      for (int t = w * per_thread; t < (w + 1) * per_thread; ++t) {
        for (uint64_t i = 0; i < kOpsPerTenant; ++i) {
          Status status = fleet.Op(t, i);
          if (!status.ok()) {
            if (failures.fetch_add(1) == 0) {
              first_failure[w] = status;
            }
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  std::string detail;
  for (const Status& status : first_failure) {
    if (!status.ok()) {
      detail = status.ToString();
    }
  }
  EXPECT_EQ(failures.load(), 0) << detail;

  uint64_t total_ops = 0;
  for (int t = 0; t < config.tenants; ++t) {
    total_ops += fleet.stats(t).ops;
  }
  EXPECT_EQ(total_ops, static_cast<uint64_t>(config.tenants) * kOpsPerTenant);
  // The Zipfian read stream must ride the lock-free fast path, and the rename mix must
  // have exercised the two-phase cross-shard acquire at least once.
  EXPECT_GT(kernel_->stats().grant_fast_hits.load(), 0u);
  EXPECT_GT(kernel_->stats().cross_shard_acquires.load(), 0u);
}

// ---- Concurrent cross-shard renames: opposite directions, consistent outcome ----

TEST_F(FleetTest, ConcurrentCrossShardRenamesConverge) {
  Build(8);
  constexpr int kTenants = 8;
  constexpr int kRounds = 10;
  ArckFsConfig fs_config;
  std::vector<std::unique_ptr<ArckFs>> tenants;
  for (int t = 0; t < kTenants; ++t) {
    tenants.push_back(std::make_unique<ArckFs>(*kernel_, fs_config));
  }
  ArckFs& provisioner = *tenants[0];
  TRIO_CHECK_OK(provisioner.Mkdir("/a"));
  TRIO_CHECK_OK(provisioner.Mkdir("/b"));
  for (int t = 0; t < kTenants; ++t) {
    Result<Fd> fd =
        provisioner.Open("/a/f" + std::to_string(t), OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok());
    TRIO_CHECK(provisioner.Pwrite(*fd, "fleet", 5, 0).ok());
    TRIO_CHECK_OK(provisioner.Close(*fd));
  }
  TRIO_CHECK_OK(provisioner.ReleaseFile("/a"));
  TRIO_CHECK_OK(provisioner.ReleaseFile("/b"));
  for (int t = 0; t < kTenants; ++t) {
    TRIO_CHECK_OK(provisioner.ReleaseFile("/a/f" + std::to_string(t)));
  }

  // Each tenant shuttles its own file between the two directories; every rename
  // write-maps BOTH directories, so concurrent tenants continually revoke each other.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kTenants; ++t) {
    threads.emplace_back([&, t] {
      const std::string name = "/f" + std::to_string(t);
      for (int round = 0; round < kRounds; ++round) {
        const std::string from = (round % 2 == 0 ? "/a" : "/b") + name;
        const std::string to = (round % 2 == 0 ? "/b" : "/a") + name;
        Status moved = tenants[t]->Rename(from, to);
        if (!moved.ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(failures.load(), 0);

  // A fresh observer forces reconciliation of both directories: every file must be
  // found in exactly one of them (kRounds even => back in /a).
  ArckFs observer(*kernel_, fs_config);
  for (int t = 0; t < kTenants; ++t) {
    const std::string name = "/f" + std::to_string(t);
    const bool in_a = observer.Stat("/a" + name).ok();
    const bool in_b = observer.Stat("/b" + name).ok();
    EXPECT_TRUE(in_a != in_b) << name << " in_a=" << in_a << " in_b=" << in_b;
  }
}

// ---- Canary: revoke of a holder that already tore down its node state ----

TEST_F(FleetTest, RevokeAfterHolderTeardownCompletes) {
  Build(8);
  ArckFsConfig fs_config;
  ArckFs creator(*kernel_, fs_config);
  TRIO_CHECK_OK(creator.Mkdir("/x"));
  Result<Fd> fd = creator.Open("/x/f", OpenFlags::CreateTrunc());
  TRIO_CHECK(fd.ok());
  TRIO_CHECK(creator.Pwrite(*fd, "payload", 7, 0).ok());
  TRIO_CHECK_OK(creator.Close(*fd));
  // Pathological release order: the file release is a kernel-side no-op (the kernel has
  // never heard of the ino), and the directory release then registers the child WITH an
  // implicit write grant to `creator` — whose node state is already gone.
  TRIO_CHECK_OK(creator.ReleaseFile("/x/f"));
  TRIO_CHECK_OK(creator.ReleaseFile("/x"));

  // Before the fix this spun forever: each revoke callback found no node state, skipped
  // the UnmapFile, and the kernel re-issued the callback indefinitely.
  ArckFs reader(*kernel_, fs_config);
  Result<Fd> rfd = reader.Open("/x/f", OpenFlags::ReadOnly());
  ASSERT_TRUE(rfd.ok()) << rfd.status().ToString();
  char buffer[7];
  Result<size_t> n = reader.Pread(*rfd, buffer, sizeof(buffer), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 7u);
  EXPECT_EQ(std::string(buffer, 7), "payload");
  TRIO_CHECK_OK(reader.Close(*rfd));
}

// ---- Canary: completed-but-ineffective revoke escalates to ForceRelease ----

TEST_F(FleetTest, UncooperativeHolderIsForceReleasedAfterCompletedRevoke) {
  Build(8);
  ArckFsConfig fs_config;
  ArckFs creator(*kernel_, fs_config);
  Result<Fd> fd = creator.Open("/hostage", OpenFlags::CreateTrunc());
  TRIO_CHECK(fd.ok());
  TRIO_CHECK(creator.Pwrite(*fd, "data", 4, 0).ok());
  TRIO_CHECK_OK(creator.Close(*fd));
  TRIO_CHECK_OK(creator.ReleaseFile("/"));
  TRIO_CHECK_OK(creator.ReleaseFile("/hostage"));
  Result<StatInfo> info = creator.Stat("/hostage");
  TRIO_CHECK(info.ok());

  // A raw registrant whose revoke callback completes without releasing anything — the
  // lease contract says it cannot stall a conflicting mapper beyond cooperation failure.
  LibFsOptions options;
  options.callbacks.revoke = [](Ino) {};
  LibFsId squatter = kernel_->RegisterLibFs(options);
  Result<MapInfo> grabbed = kernel_->MapFile(squatter, kInvalidIno, info->ino, true);
  ASSERT_TRUE(grabbed.ok()) << grabbed.status().ToString();

  ArckFs reader(*kernel_, fs_config);
  Result<Fd> rfd = reader.Open("/hostage", OpenFlags::ReadOnly());
  ASSERT_TRUE(rfd.ok()) << rfd.status().ToString();
  TRIO_CHECK_OK(reader.Close(*rfd));
  EXPECT_GE(kernel_->stats().forced_releases.load(), 1u);
  kernel_->UnregisterLibFs(squatter);
}

// ---- Canary: Chmod write-through on the seqlock grant cache ----

TEST_F(FleetTest, StaleGrantInvalidatedOnChmod) {
  Build(8);
  // Root is uid 0 / 0755, and uid 0 bypasses AccessAllowed entirely — so the actors
  // here must be non-root, working in a world-writable directory an admin provisions.
  ArckFs admin(*kernel_);
  TRIO_CHECK_OK(admin.Mkdir("/pub", 0777));
  TRIO_CHECK_OK(admin.ReleaseFile("/"));
  TRIO_CHECK_OK(admin.ReleaseFile("/pub"));

  ArckFsConfig owner_config;
  owner_config.uid = 100;
  owner_config.gid = 100;
  ArckFs owner(*kernel_, owner_config);
  Result<Fd> fd = owner.Open("/pub/secret", OpenFlags::CreateTrunc(), 0644);
  TRIO_CHECK(fd.ok());
  TRIO_CHECK(owner.Pwrite(*fd, "top", 3, 0).ok());
  TRIO_CHECK_OK(owner.Close(*fd));
  TRIO_CHECK_OK(owner.ReleaseFile("/pub"));
  TRIO_CHECK_OK(owner.ReleaseFile("/pub/secret"));

  ArckFsConfig other_config;
  other_config.uid = 200;
  other_config.gid = 200;
  ArckFs other(*kernel_, other_config);
  Result<Fd> rfd = other.Open("/pub/secret", OpenFlags::ReadOnly());
  ASSERT_TRUE(rfd.ok()) << rfd.status().ToString();
  Result<StatInfo> info = other.Stat("/pub/secret");
  TRIO_CHECK(info.ok());
  // The read map published a grant; the fast path serves it lock-free.
  ASSERT_TRUE(kernel_->LookupGrant(other.id(), info->ino).ok());

  TRIO_CHECK_OK(owner.Chmod("/pub/secret", 0600));
  // Chmod must have erased the cached grant: the lookup now funnels through the locked
  // fallback, which re-checks the shadow inode and denies. A stale seqlock hit here
  // would hand uid 200 a grant its permissions no longer cover.
  Result<MapInfo> stale = kernel_->LookupGrant(other.id(), info->ino);
  EXPECT_FALSE(stale.ok());
  EXPECT_TRUE(stale.status().Is(ErrorCode::kPermission)) << stale.status().ToString();
  TRIO_CHECK_OK(other.Close(*rfd));
}

// ---- Cross-shard trust-boundary attacks (src/attacks #12 and #13) ----

TEST_F(FleetTest, CrossShardForeignClaimDetected) {
  Build(8);
  ArckFs victim(*kernel_);
  Result<Fd> fd = victim.Open("/prize", OpenFlags::CreateTrunc());
  TRIO_CHECK(fd.ok());
  TRIO_CHECK(victim.Pwrite(*fd, "gold", 4, 0).ok());
  TRIO_CHECK_OK(victim.Close(*fd));
  TRIO_CHECK_OK(victim.ReleaseFile("/"));
  TRIO_CHECK_OK(victim.ReleaseFile("/prize"));

  // The attacker owns /evil (with one pad file so the directory has a data page with
  // free slots) and must NOT write-map root, the victim's parent — release it first.
  MaliciousLibFs attacker(*kernel_);
  TRIO_CHECK_OK(attacker.Mkdir("/evil"));
  Result<Fd> pad = attacker.Open("/evil/pad", OpenFlags::CreateTrunc());
  TRIO_CHECK(pad.ok());
  TRIO_CHECK_OK(attacker.Close(*pad));
  TRIO_CHECK_OK(attacker.ReleaseFile("/evil/pad"));
  TRIO_CHECK_OK(attacker.ReleaseFile("/evil"));
  TRIO_CHECK_OK(attacker.ReleaseFile("/"));

  ASSERT_TRUE(attacker.AttackCrossShardForeignClaim("/evil", "/prize").ok());
  // The forged fields match the shadow inode exactly; only the cross-shard ownership
  // walk (the child's shard + its real parent's shard, taken in order) can reject it.
  Status released = attacker.ReleaseTarget("/evil");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();

  // The victim's file is untouched and still reachable by an honest tenant.
  ArckFs reader(*kernel_);
  Result<Fd> rfd = reader.Open("/prize", OpenFlags::ReadOnly());
  ASSERT_TRUE(rfd.ok()) << rfd.status().ToString();
  char buffer[4];
  Result<size_t> n = reader.Pread(*rfd, buffer, sizeof(buffer), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(std::string(buffer, *n), "gold");
  TRIO_CHECK_OK(reader.Close(*rfd));
}

TEST_F(FleetTest, MovedInPermissionLiftDetected) {
  Build(8);
  ArckFs victim(*kernel_);
  Result<Fd> fd = victim.Open("/lifted", OpenFlags::CreateTrunc(), 0644);
  TRIO_CHECK(fd.ok());
  TRIO_CHECK(victim.Pwrite(*fd, "data", 4, 0).ok());
  TRIO_CHECK_OK(victim.Close(*fd));
  TRIO_CHECK_OK(victim.ReleaseFile("/"));
  TRIO_CHECK_OK(victim.ReleaseFile("/lifted"));

  MaliciousLibFs attacker(*kernel_);
  TRIO_CHECK_OK(attacker.Mkdir("/evil2"));
  Result<Fd> pad = attacker.Open("/evil2/pad", OpenFlags::CreateTrunc());
  TRIO_CHECK(pad.ok());
  TRIO_CHECK_OK(attacker.Close(*pad));
  TRIO_CHECK_OK(attacker.ReleaseFile("/"));

  // The attack itself re-acquires root's WRITE map, so the cross-directory move is
  // permitted — the forgery is the mode/uid lift smuggled inside the "rename".
  ASSERT_TRUE(attacker.AttackMovedInPermissionLift("/evil2", "/lifted").ok());
  Status released = attacker.ReleaseTarget("/evil2");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();

  // Ground truth unchanged: the shadow inode still says 0644.
  ArckFs reader(*kernel_);
  Result<StatInfo> info = reader.Stat("/lifted");
  TRIO_CHECK(info.ok());
  EXPECT_EQ(info->mode & 0777u, 0644u);
}

// ---- Canary: FIFO quarantine eviction skips stale re-quarantine entries ----

TEST_F(FleetTest, RequarantineKeepsEvictionOrder) {
  pool_ = std::make_unique<NvmPool>(1 << 13);
  FormatOptions options;
  options.max_inodes = 4096;
  TRIO_CHECK_OK(Format(*pool_, options));
  KernelConfig config;
  config.controller_shards = 8;
  config.max_quarantined_files = 2;
  kernel_ = std::make_unique<KernelController>(*pool_, config);
  TRIO_CHECK_OK(kernel_->Mount());

  ArckFs victim(*kernel_);
  MaliciousLibFs attacker(*kernel_);
  auto corrupt = [&](const std::string& path) {
    ASSERT_TRUE(attacker.AttackSizeBeyondCapacity(path).ok());
    Status released = attacker.ReleaseTarget(path);
    ASSERT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
  };
  std::vector<Ino> inos;
  for (int i = 0; i < 3; ++i) {
    const std::string path = "/q" + std::to_string(i);
    Result<Fd> fd = victim.Open(path, OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok());
    TRIO_CHECK(victim.Pwrite(*fd, "data", 4, 0).ok());
    TRIO_CHECK_OK(victim.Close(*fd));
    Result<StatInfo> info = victim.Stat(path);
    TRIO_CHECK(info.ok());
    inos.push_back(info->ino);
    TRIO_CHECK_OK(victim.ReleaseFile(path));
  }
  TRIO_CHECK_OK(victim.ReleaseFile("/"));

  // Quarantine q0 twice: the second impound supersedes the first, leaving a stale
  // sequence entry at the FIFO head. The naive "pop oldest" would evict q0 on the first
  // stale entry and then q0 AGAIN (double-count) or skip a live file, breaking the
  // oldest-first contract the deque-based rewrite must keep.
  corrupt("/q0");
  corrupt("/q0");
  EXPECT_EQ(kernel_->QuarantineCount(), 1u);
  corrupt("/q1");  // Count 2 == capacity, no eviction yet.
  EXPECT_EQ(kernel_->QuarantineCount(), 2u);
  corrupt("/q2");  // Evicts exactly one file: q0 (its LIVE entry, not the stale one).
  EXPECT_EQ(kernel_->QuarantineCount(), 2u);
  EXPECT_EQ(kernel_->stats().quarantine_evictions.load(), 1u);
  EXPECT_TRUE(kernel_->QuarantineErrorOf(inos[0]).Is(ErrorCode::kNotFound));
  EXPECT_FALSE(kernel_->QuarantineErrorOf(inos[1]).Is(ErrorCode::kNotFound));
  EXPECT_FALSE(kernel_->QuarantineErrorOf(inos[2]).Is(ErrorCode::kNotFound));
}

}  // namespace
}  // namespace trio
