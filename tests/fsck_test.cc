// Tests for the offline checker: a clean FS sweeps clean; each global invariant's
// violation is reported; the fsck never modifies the pool.

#include <gtest/gtest.h>

#include <memory>

#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "src/verifier/fsck.h"

namespace trio {
namespace {

class FsckTest : public ::testing::Test {
 protected:
  FsckTest() : pool_(4096) {
    FormatOptions options;
    options.max_inodes = 1024;
    TRIO_CHECK_OK(Format(pool_, options));
    kernel_ = std::make_unique<KernelController>(pool_);
    TRIO_CHECK_OK(kernel_->Mount());
    fs_ = std::make_unique<ArckFs>(*kernel_);
  }

  void Populate() {
    TRIO_CHECK_OK(fs_->Mkdir("/a"));
    TRIO_CHECK_OK(fs_->Mkdir("/a/b"));
    for (int i = 0; i < 10; ++i) {
      Result<Fd> fd = fs_->Open("/a/f" + std::to_string(i), OpenFlags::CreateRw());
      TRIO_CHECK(fd.ok());
      std::string data(1000 * (i + 1), 'x');
      TRIO_CHECK(fs_->Pwrite(*fd, data.data(), data.size(), 0).ok());
      TRIO_CHECK_OK(fs_->Close(*fd));
    }
    // Reconcile everything so shadow inodes exist for all files.
    fs_.reset();
    fs_ = std::make_unique<ArckFs>(*kernel_);
  }

  // Finds the dirent of /a/f0 by raw scan (fsck-style, no LibFS involved).
  DirentBlock* FindDirent(const std::string& name) {
    DirentBlock* found = nullptr;
    const Superblock* sb = SuperblockOf(pool_);
    std::function<void(const DirentBlock*)> walk = [&](const DirentBlock* dir) {
      (void)ForEachDirent(pool_, dir->first_index_page,
                          [&](DirentBlock* d, PageNumber, size_t) -> Status {
                            if (d->Name() == name) {
                              found = d;
                            } else if (d->IsDirectory()) {
                              walk(d);
                            }
                            return OkStatus();
                          });
    };
    walk(&sb->root);
    return found;
  }

  NvmPool pool_;
  std::unique_ptr<KernelController> kernel_;
  std::unique_ptr<ArckFs> fs_;
};

TEST_F(FsckTest, CleanFileSystemSweepsClean) {
  Populate();
  Result<FsckReport> report = RunFsck(pool_);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->Clean()) << report->problems.size() << " problems, first: "
                               << (report->problems.empty()
                                       ? ""
                                       : report->problems[0].detail);
  EXPECT_EQ(report->directories, 3u);  // root, /a, /a/b.
  EXPECT_EQ(report->regular_files, 10u);
  EXPECT_EQ(report->bytes_in_files, 1000u * 55);
  EXPECT_GT(report->pages_in_use, 10u);
}

TEST_F(FsckTest, UnformattedPoolIsG1) {
  NvmPool raw(64);
  Result<FsckReport> report = RunFsck(raw);
  ASSERT_TRUE(report.ok());
  ASSERT_FALSE(report->Clean());
  EXPECT_EQ(report->problems[0].invariant, "G1");
}

TEST_F(FsckTest, BadTypeBitsAreG2) {
  Populate();
  DirentBlock* d = FindDirent("f0");
  ASSERT_NE(d, nullptr);
  const uint32_t evil = d->mode & kModePermMask;
  pool_.Write(&d->mode, &evil, sizeof(evil));
  Result<FsckReport> report = RunFsck(pool_);
  ASSERT_FALSE(report->Clean());
  EXPECT_EQ(report->problems[0].invariant, "G2");
}

TEST_F(FsckTest, SharedPageIsG3) {
  Populate();
  DirentBlock* f0 = FindDirent("f0");
  DirentBlock* f1 = FindDirent("f1");
  auto* ip0 = reinterpret_cast<IndexPage*>(pool_.PageAddress(f0->first_index_page));
  auto* ip1 = reinterpret_cast<IndexPage*>(pool_.PageAddress(f1->first_index_page));
  pool_.Store64(&ip1->entries[0], ip0->entries[0]);
  Result<FsckReport> report = RunFsck(pool_);
  ASSERT_FALSE(report->Clean());
  bool found_g3 = false;
  for (const auto& problem : report->problems) {
    found_g3 |= problem.invariant == "G3";
  }
  EXPECT_TRUE(found_g3);
}

TEST_F(FsckTest, DuplicateInoIsG4) {
  Populate();
  DirentBlock* f0 = FindDirent("f0");
  DirentBlock* f1 = FindDirent("f1");
  pool_.Store64(&f1->ino, f0->ino);
  Result<FsckReport> report = RunFsck(pool_);
  ASSERT_FALSE(report->Clean());
  bool found_g4 = false;
  for (const auto& problem : report->problems) {
    found_g4 |= problem.invariant == "G4";
  }
  EXPECT_TRUE(found_g4);
}

TEST_F(FsckTest, ShadowMismatchIsG5) {
  Populate();
  DirentBlock* d = FindDirent("f3");
  const uint32_t evil = (d->mode & kModeTypeMask) | 0777;
  pool_.Write(&d->mode, &evil, sizeof(evil));
  Result<FsckReport> report = RunFsck(pool_);
  ASSERT_FALSE(report->Clean());
  EXPECT_EQ(report->problems[0].invariant, "G5");
}

TEST_F(FsckTest, OrphanShadowIsG6) {
  Populate();
  // Fabricate a live shadow inode nobody references.
  ShadowInode* shadow = ShadowInodeOf(pool_, 900);
  ShadowInode fake{kModeRegular | 0644, 0, 0, 1};
  pool_.Write(shadow, &fake, sizeof(fake));
  Result<FsckReport> report = RunFsck(pool_);
  ASSERT_FALSE(report->Clean());
  EXPECT_EQ(report->problems[0].invariant, "G6");
  EXPECT_EQ(report->problems[0].ino, 900u);
}

TEST_F(FsckTest, FsckDoesNotModifyThePool) {
  Populate();
  std::vector<char> before(pool_.num_pages() * kPageSize);
  std::memcpy(before.data(), pool_.base(), before.size());
  (void)RunFsck(pool_);
  EXPECT_EQ(std::memcmp(before.data(), pool_.base(), before.size()), 0);
}

}  // namespace
}  // namespace trio
