// Tests of the observability spine: StatRegistry counters/histograms and JSON snapshots,
// OpContext/OpScope/TraceSpan tracing with the per-thread ring, PersistSpan fence
// accounting and coalescing, and the repo-wide enforcement that every persistence
// primitive call outside src/nvm goes through a PersistSpan.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "src/nvm/nvm.h"
#include "src/obs/op_context.h"
#include "src/obs/persist_span.h"
#include "src/obs/stats.h"

namespace trio {
namespace {

// ---------------------------------------------------------------------------
// Counters, histograms, registry
// ---------------------------------------------------------------------------

TEST(StatRegistryTest, CounterBasics) {
  obs::Counter c;
  EXPECT_EQ(c.load(), 0u);
  c.fetch_add(5);
  c.fetch_sub(2);
  EXPECT_EQ(c.load(), 3u);
  c = 0;
  EXPECT_EQ(c.load(), 0u);
}

TEST(StatRegistryTest, HistogramBinsAreLogarithmic) {
  obs::LatencyHistogram h;
  h.Record(0);
  h.Record(1);
  h.Record(2);
  h.Record(3);
  h.Record(1024);
  EXPECT_EQ(h.TotalCount(), 5u);
  EXPECT_EQ(h.SumNs(), 1030u);
  EXPECT_EQ(h.BinCount(0), 2u);   // 0 and 1.
  EXPECT_EQ(h.BinCount(1), 2u);   // 2 and 3.
  EXPECT_EQ(h.BinCount(10), 1u);  // 1024.
  EXPECT_EQ(obs::LatencyHistogram::BinOf(1023), 9u);
  EXPECT_EQ(obs::LatencyHistogram::BinUpperNs(9), 1023u);
  h.Reset();
  EXPECT_EQ(h.TotalCount(), 0u);
  EXPECT_EQ(h.SumNs(), 0u);
}

TEST(StatRegistryTest, GroupsSumPerLayerAndUnregisterOnDestruction) {
  obs::Counter a, b;
  a.fetch_add(7);
  b.fetch_add(5);
  {
    obs::ScopedRegistration reg_a("testlayer", {{"hits", &a}});
    obs::ScopedRegistration reg_b("testlayer", {{"hits", &b}});
    EXPECT_EQ(obs::StatRegistry::Global().CounterValue("testlayer", "hits"), 12u);
    const std::vector<std::string> layers = obs::StatRegistry::Global().Layers();
    EXPECT_NE(std::find(layers.begin(), layers.end(), "testlayer"), layers.end());
  }
  EXPECT_EQ(obs::StatRegistry::Global().CounterValue("testlayer", "hits"), 0u);
}

TEST(StatRegistryTest, ToJsonContainsLayersCountersAndHistograms) {
  obs::Counter ops;
  ops.fetch_add(42);
  obs::LatencyHistogram lat;
  lat.Record(100);
  obs::ScopedRegistration reg("jsonlayer", {{"ops", &ops}, {"latency", &lat}});
  const std::string json = obs::StatRegistry::Global().ToJson();
  EXPECT_NE(json.find("\"jsonlayer\""), std::string::npos);
  EXPECT_NE(json.find("\"ops\":42"), std::string::npos);
  EXPECT_NE(json.find("\"latency\""), std::string::npos);
  EXPECT_NE(json.find("\"sum_ns\":100"), std::string::npos);
}

// ---------------------------------------------------------------------------
// OpContext / tracing
// ---------------------------------------------------------------------------

TEST(OpContextTest, CurrentIsNullWithoutTracing) {
  obs::SetTracing(false);
  EXPECT_EQ(obs::OpContext::Current(), nullptr);
  obs::OpScope op("Disabled");
  EXPECT_EQ(obs::OpContext::Current(), nullptr);
  EXPECT_EQ(op.context(), nullptr);
}

TEST(OpContextTest, OpScopeEstablishesAndNestsContexts) {
  obs::SetTracing(true);
  obs::ClearTraceEvents();
  {
    obs::OpScope outer("Outer");
    obs::OpContext* outer_ctx = obs::OpContext::Current();
    ASSERT_NE(outer_ctx, nullptr);
    EXPECT_NE(outer_ctx->id, 0u);
    EXPECT_STREQ(outer_ctx->name, "Outer");
    EXPECT_EQ(outer_ctx->parent, nullptr);
    {
      obs::OpScope inner("Inner");
      obs::OpContext* inner_ctx = obs::OpContext::Current();
      ASSERT_NE(inner_ctx, nullptr);
      EXPECT_EQ(inner_ctx->parent, outer_ctx);
      EXPECT_NE(inner_ctx->id, outer_ctx->id);
    }
    EXPECT_EQ(obs::OpContext::Current(), outer_ctx);
  }
  EXPECT_EQ(obs::OpContext::Current(), nullptr);
  obs::SetTracing(false);
}

TEST(OpContextTest, SpansLandInTheTraceRing) {
  obs::SetTracing(true);
  obs::ClearTraceEvents();
  {
    obs::OpScope op("RingOp");
    obs::TraceSpan span("RingSpan");
  }
  std::vector<obs::TraceEvent> events = obs::SnapshotAllTraceEvents();
  bool saw_op = false, saw_span = false;
  for (const obs::TraceEvent& e : events) {
    if (std::string(e.name) == "RingOp") {
      saw_op = true;
    }
    if (std::string(e.name) == "RingSpan") {
      saw_span = true;
      EXPECT_GE(e.end_ns, e.begin_ns);
      EXPECT_NE(e.op_id, 0u);
    }
  }
  EXPECT_TRUE(saw_op);
  EXPECT_TRUE(saw_span);
  obs::SetTracing(false);
  obs::ClearTraceEvents();
}

TEST(OpContextTest, RingSurvivesManyEventsFromManyThreads) {
  obs::SetTracing(true);
  obs::ClearTraceEvents();
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 3000; ++i) {  // More events than one ring holds.
        obs::OpScope op("Churn");
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  std::vector<obs::TraceEvent> events = obs::SnapshotAllTraceEvents();
  EXPECT_GT(events.size(), 0u);
  for (const obs::TraceEvent& e : events) {
    EXPECT_STREQ(e.name, "Churn");
  }
  obs::SetTracing(false);
  obs::ClearTraceEvents();
}

// ---------------------------------------------------------------------------
// PersistSpan
// ---------------------------------------------------------------------------

class PersistSpanTest : public ::testing::Test {
 protected:
  PersistSpanTest() : pool_(16), stats_("spantest") {}

  uint64_t* Word() { return reinterpret_cast<uint64_t*>(pool_.PageAddress(1)); }

  NvmPool pool_;
  obs::PersistStats stats_;
};

TEST_F(PersistSpanTest, FenceWithNothingPendingIsCoalesced) {
  const uint64_t fences_before = pool_.stats().fences.load();
  {
    obs::PersistSpan span(pool_, &stats_);
    span.Fence();  // Nothing pending: skipped.
    span.Fence();
  }
  EXPECT_EQ(pool_.stats().fences.load(), fences_before);
  EXPECT_EQ(stats_.fences.load(), 0u);
  EXPECT_EQ(stats_.coalesced_fences.load(), 2u);
}

TEST_F(PersistSpanTest, PersistThenFenceIssuesExactlyOne) {
  const uint64_t fences_before = pool_.stats().fences.load();
  {
    obs::PersistSpan span(pool_, &stats_);
    span.Persist(Word(), 64);
    EXPECT_TRUE(span.pending());
    span.Fence();
    EXPECT_FALSE(span.pending());
    span.Fence();  // Second fence has nothing pending: coalesced.
  }
  EXPECT_EQ(pool_.stats().fences.load(), fences_before + 1);
  EXPECT_EQ(stats_.persists.load(), 1u);
  EXPECT_EQ(stats_.bytes_persisted.load(), 64u);
  EXPECT_EQ(stats_.fences.load(), 1u);
  EXPECT_EQ(stats_.coalesced_fences.load(), 1u);
}

TEST_F(PersistSpanTest, DestructorFencesPendingPersists) {
  const uint64_t fences_before = pool_.stats().fences.load();
  {
    obs::PersistSpan span(pool_, &stats_);
    span.Persist(Word(), 8);
    // No explicit Fence: the destructor must close the span.
  }
  EXPECT_EQ(pool_.stats().fences.load(), fences_before + 1);
  EXPECT_EQ(stats_.fences.load(), 1u);
}

TEST_F(PersistSpanTest, DisarmTransfersFenceDutyAndForceFenceTakesIt) {
  const uint64_t fences_before = pool_.stats().fences.load();
  {
    obs::PersistSpan worker(pool_, &stats_);
    worker.Persist(Word(), 8);
    worker.Disarm();  // Last-completer protocol: someone else fences for us.
  }
  EXPECT_EQ(pool_.stats().fences.load(), fences_before);
  {
    obs::PersistSpan completer(pool_, &stats_);
    completer.ForceFence();  // Fences on behalf of the disarmed span.
  }
  EXPECT_EQ(pool_.stats().fences.load(), fences_before + 1);
}

TEST_F(PersistSpanTest, CommitStore64StoresPersistsAndFences) {
  const uint64_t fences_before = pool_.stats().fences.load();
  {
    obs::PersistSpan span(pool_, &stats_);
    span.CommitStore64(Word(), 0xabcdefu);
  }
  EXPECT_EQ(pool_.Load64(Word()), 0xabcdefu);
  EXPECT_EQ(pool_.stats().fences.load(), fences_before + 1);
  EXPECT_EQ(stats_.commit_stores.load(), 1u);
  EXPECT_EQ(stats_.fences.load(), 1u);
}

TEST_F(PersistSpanTest, AttributesToCurrentOpWhenTracing) {
  obs::SetTracing(true);
  {
    obs::OpScope op("PersistOp");
    obs::OpContext* ctx = obs::OpContext::Current();
    ASSERT_NE(ctx, nullptr);
    obs::PersistSpan span(pool_, &stats_);
    span.Persist(Word(), 128);
    span.Fence();
    EXPECT_EQ(ctx->counters.bytes_persisted.load(), 128u);
    EXPECT_EQ(ctx->counters.fences.load(), 1u);
  }
  obs::SetTracing(false);
  obs::ClearTraceEvents();
}

// ---------------------------------------------------------------------------
// Enforcement: no direct persistence-primitive calls outside src/nvm
// ---------------------------------------------------------------------------

TEST(PersistSpanEnforcementTest, NoDirectPersistCallsOutsideNvmAndSpans) {
  // Every Persist/PersistNow/Fence/CommitStore64 call in the file-system layers must go
  // through obs::PersistSpan so fence accounting and per-op attribution cannot drift.
  // The span itself (src/obs) and the pool implementation (src/nvm) are the only homes of
  // the primitives; sim/attack tooling and tests drive the pool deliberately and are out
  // of scope.
  const std::filesystem::path root(TRIO_SOURCE_DIR);
  ASSERT_TRUE(std::filesystem::exists(root / "src")) << root;
  const std::vector<std::string> enforced = {"src/libfs", "src/core", "src/kernel",
                                             "src/kvfs", "src/baselines"};
  // An identifier receiver followed by one of the primitives. PersistSpan temporaries
  // (`obs::PersistSpan(...).CommitStore64(...)`) do not match: the receiver there is a
  // closing parenthesis, not an identifier.
  const std::regex direct_call(
      R"((\w+)\s*(\.|->)\s*(PersistNow|Persist|Fence|CommitStore64)\s*\()");
  std::vector<std::string> violations;
  for (const std::string& dir : enforced) {
    for (const auto& entry : std::filesystem::recursive_directory_iterator(root / dir)) {
      const std::string ext = entry.path().extension().string();
      if (!entry.is_regular_file() || (ext != ".cc" && ext != ".h")) {
        continue;
      }
      std::ifstream in(entry.path());
      std::string line;
      size_t lineno = 0;
      while (std::getline(in, line)) {
        ++lineno;
        std::smatch match;
        if (!std::regex_search(line, match, direct_call)) {
          continue;
        }
        const std::string receiver = match[1].str();
        // Calls THROUGH a span are the sanctioned path.
        if (receiver.find("span") != std::string::npos ||
            receiver.find("Span") != std::string::npos) {
          continue;
        }
        violations.push_back(entry.path().string() + ":" + std::to_string(lineno) + ": " +
                             match[0].str());
      }
    }
  }
  EXPECT_TRUE(violations.empty()) << [&] {
    std::string all = "direct persistence calls found:\n";
    for (const std::string& v : violations) {
      all += "  " + v + "\n";
    }
    return all;
  }();
}

}  // namespace
}  // namespace trio
