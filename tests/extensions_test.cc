// Tests for the extension features: trust groups (§3.2), the relaxed-data consistency
// mode (§4.4's "other consistency modes"), file-backed NVM pools, and lease bookkeeping.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <thread>

#include "src/common/clock.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "src/libfs/trust_group.h"

namespace trio {
namespace {

struct Stack {
  Stack(size_t pages = 4096, NvmMode mode = NvmMode::kFast, Clock* clock = nullptr) {
    pool = std::make_unique<NvmPool>(pages, mode);
    FormatOptions options;
    options.max_inodes = 1024;
    TRIO_CHECK_OK(Format(*pool, options));
    kernel = std::make_unique<KernelController>(
        *pool, KernelConfig{}, clock != nullptr ? clock : SystemClock::Instance());
    TRIO_CHECK_OK(kernel->Mount());
  }
  std::unique_ptr<NvmPool> pool;
  std::unique_ptr<KernelController> kernel;
};

TEST(TrustGroupTest, MembersShareWithoutVerification) {
  Stack stack;
  TrustGroup group(*stack.kernel);
  auto alice = group.Join();
  auto bob = group.Join();
  EXPECT_EQ(group.member_count(), 2u);

  Result<Fd> fd = alice.fs().Open("/doc", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(alice.fs().Pwrite(*fd, "hello", 5, 0).ok());
  ASSERT_TRUE(alice.fs().Close(*fd).ok());

  const uint64_t verifications = stack.kernel->stats().verifications.load();
  // Bob writes the same file: same LibFS, same trust group — no handoff protocol.
  Result<Fd> bob_fd = bob.fs().Open("/doc", OpenFlags::ReadWrite());
  ASSERT_TRUE(bob_fd.ok());
  ASSERT_TRUE(bob.fs().Pwrite(*bob_fd, "world", 5, 0).ok());
  ASSERT_TRUE(bob.fs().Close(*bob_fd).ok());
  EXPECT_EQ(stack.kernel->stats().verifications.load(), verifications);
}

TEST(TrustGroupTest, CrossGroupSharingStillVerifies) {
  Stack stack;
  TrustGroup group_a(*stack.kernel);
  TrustGroup group_b(*stack.kernel);
  auto member_a = group_a.Join();
  auto member_b = group_b.Join();

  Result<Fd> fd = member_a.fs().Open("/shared", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(member_a.fs().Pwrite(*fd, "x", 1, 0).ok());
  ASSERT_TRUE(member_a.fs().Close(*fd).ok());

  const uint64_t verifications = stack.kernel->stats().verifications.load();
  Result<Fd> other = member_b.fs().Open("/shared", OpenFlags::ReadOnly());
  ASSERT_TRUE(other.ok());
  ASSERT_TRUE(member_b.fs().Close(*other).ok());
  EXPECT_GT(stack.kernel->stats().verifications.load(), verifications);
}

TEST(RelaxedDataModeTest, DataLostWithoutFsyncButFsIsConsistent) {
  Stack stack(4096, NvmMode::kTracking);
  ArckFsConfig config;
  config.sync_data = false;
  auto fs = std::make_unique<ArckFs>(*stack.kernel, config);

  Result<Fd> fd = fs->Open("/f", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs->Pwrite(*fd, "precious", 8, 0).ok());
  // Crash without fsync: the data flushes never happened.
  stack.pool->SimulateCrash();

  fs.reset();
  stack.kernel = std::make_unique<KernelController>(*stack.pool);
  ASSERT_TRUE(stack.kernel->Mount().ok());
  ASSERT_TRUE(stack.kernel->RunRecovery().ok());
  ArckFs recovered(*stack.kernel);
  Result<StatInfo> info = recovered.Stat("/f");
  if (info.ok()) {
    // Structure intact; content may be zeros (holes) — but never garbage from elsewhere.
    Result<Fd> rfd = recovered.Open("/f", OpenFlags::ReadOnly());
    ASSERT_TRUE(rfd.ok());
    char buf[8] = {};
    Result<size_t> n = recovered.Pread(*rfd, buf, 8, 0);
    ASSERT_TRUE(n.ok());
    for (size_t i = 0; i < *n; ++i) {
      EXPECT_TRUE(buf[i] == 0 || std::string("precious")[i] == buf[i]);
    }
    ASSERT_TRUE(recovered.Close(*rfd).ok());
  }
}

TEST(RelaxedDataModeTest, FsyncMakesDataDurable) {
  Stack stack(4096, NvmMode::kTracking);
  ArckFsConfig config;
  config.sync_data = false;
  auto fs = std::make_unique<ArckFs>(*stack.kernel, config);

  Result<Fd> fd = fs->Open("/f", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs->Pwrite(*fd, "precious", 8, 0).ok());
  ASSERT_TRUE(fs->Fsync(*fd).ok());
  stack.pool->SimulateCrash();

  fs.reset();
  stack.kernel = std::make_unique<KernelController>(*stack.pool);
  ASSERT_TRUE(stack.kernel->Mount().ok());
  ASSERT_TRUE(stack.kernel->RunRecovery().ok());
  ArckFs recovered(*stack.kernel);
  Result<Fd> rfd = recovered.Open("/f", OpenFlags::ReadOnly());
  ASSERT_TRUE(rfd.ok());
  char buf[9] = {};
  ASSERT_TRUE(recovered.Pread(*rfd, buf, 8, 0).ok());
  EXPECT_STREQ(buf, "precious");
  ASSERT_TRUE(recovered.Close(*rfd).ok());
}

TEST(RelaxedDataModeTest, HandoffFlushesBeforeVerification) {
  Stack stack;
  ArckFsConfig config;
  config.sync_data = false;
  ArckFs writer(*stack.kernel, config);
  ArckFs reader(*stack.kernel);

  Result<Fd> fd = writer.Open("/h", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(writer.Pwrite(*fd, "shared!", 7, 0).ok());
  ASSERT_TRUE(writer.Close(*fd).ok());

  // The reader's map triggers revocation; the relaxed writer must flush on that path.
  Result<Fd> rfd = reader.Open("/h", OpenFlags::ReadOnly());
  ASSERT_TRUE(rfd.ok());
  char buf[7];
  ASSERT_TRUE(reader.Pread(*rfd, buf, 7, 0).ok());
  EXPECT_EQ(std::string(buf, 7), "shared!");
  ASSERT_TRUE(reader.Close(*rfd).ok());
}

TEST(FileBackedPoolTest, ContentsSurviveReopen) {
  const std::string path = "/tmp/trio_pool_test.img";
  std::remove(path.c_str());
  {
    NvmPool pool(path, 1024);
    ASSERT_TRUE(pool.file_backed());
    FormatOptions options;
    options.max_inodes = 256;
    TRIO_CHECK_OK(Format(pool, options));
    KernelController kernel(pool);
    TRIO_CHECK_OK(kernel.Mount());
    {
      ArckFs fs(kernel);
      Result<Fd> fd = fs.Open("/persist.txt", OpenFlags::CreateRw());
      ASSERT_TRUE(fd.ok());
      ASSERT_TRUE(fs.Pwrite(*fd, "across processes", 16, 0).ok());
      ASSERT_TRUE(fs.Close(*fd).ok());
    }
    TRIO_CHECK_OK(kernel.Unmount());
    pool.SyncBackingFile();
  }  // munmap + msync.
  {
    NvmPool pool(path, 1024);
    KernelController kernel(pool);
    ASSERT_TRUE(kernel.Mount().ok());
    EXPECT_FALSE(kernel.NeedsRecovery());
    ArckFs fs(kernel);
    Result<Fd> fd = fs.Open("/persist.txt", OpenFlags::ReadOnly());
    ASSERT_TRUE(fd.ok());
    char buf[17] = {};
    ASSERT_TRUE(fs.Pread(*fd, buf, 16, 0).ok());
    EXPECT_STREQ(buf, "across processes");
    ASSERT_TRUE(fs.Close(*fd).ok());
  }
  std::remove(path.c_str());
}

TEST(LeaseTest, WriteGrantCarriesDeadlineAndRenews) {
  FakeClock clock;
  Stack stack(4096, NvmMode::kFast, &clock);
  LibFsOptions options;
  LibFsId id = stack.kernel->RegisterLibFs(options);

  Result<MapInfo> grant = stack.kernel->MapRoot(id, /*write=*/true);
  ASSERT_TRUE(grant.ok());
  const uint64_t lease_ns = stack.kernel->config().lease_ms * 1000000ull;
  EXPECT_EQ(grant->lease_deadline_ns, clock.NowNs() + lease_ns);

  clock.AdvanceMs(50);
  Result<MapInfo> renewed = stack.kernel->MapRoot(id, true);
  ASSERT_TRUE(renewed.ok());
  EXPECT_EQ(renewed->lease_deadline_ns, clock.NowNs() + lease_ns);
  EXPECT_GT(renewed->lease_deadline_ns, grant->lease_deadline_ns);
  stack.kernel->UnregisterLibFs(id);
}

}  // namespace
}  // namespace trio
