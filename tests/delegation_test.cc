// Delegation v2 tests (§4.5): batched submission with one fence per batch per node,
// node-routing correctness, spin-then-park workers and waiters (no lost wakeups, no
// busy-spin when idle), work stealing, and stop/drain semantics with inflight requests.

#include "src/kernel/delegation.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "src/nvm/nvm.h"
#include "src/sim/fault_injector.h"
#include "tests/test_seed.h"

namespace trio {
namespace {

NumaTopology Topo(int nodes, int threads_per_node) {
  NumaTopology topo;
  topo.num_nodes = nodes;
  topo.delegation_threads_per_node = threads_per_node;
  return topo;
}

// Tiny spin budgets so tests reach the park path quickly.
DelegationConfig FastParkConfig() {
  DelegationConfig config;
  config.worker_spin = 64;
  config.waiter_spin = 64;
  return config;
}

// Polls until all workers are parked (or the deadline passes); returns success.
bool WaitForAllParked(const DelegationPool& delegation, uint32_t expected,
                      std::chrono::milliseconds deadline = std::chrono::seconds(10)) {
  const auto start = std::chrono::steady_clock::now();
  while (delegation.parked_workers() != expected) {
    if (std::chrono::steady_clock::now() - start > deadline) {
      return false;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

TEST(DelegationTest, StandaloneWriteLandsAndPersists) {
  NvmPool pool(32, NvmMode::kFast, Topo(2, 1));
  DelegationPool delegation(pool);

  char buf[256];
  std::memset(buf, 0x5a, sizeof(buf));
  std::atomic<uint32_t> pending{1};
  DelegationRequest req;
  req.op = DelegationRequest::Op::kWrite;
  req.nvm = pool.PageAddress(20);  // Node 1.
  req.dram = buf;
  req.len = sizeof(buf);
  req.pending = &pending;
  delegation.Submit(req);
  delegation.Wait(pending);
  EXPECT_EQ(std::memcmp(pool.PageAddress(20), buf, sizeof(buf)), 0);
  EXPECT_EQ(delegation.submitted(), 1u);
  EXPECT_EQ(delegation.completed(), 1u);
}

TEST(DelegationTest, StandaloneReadRoundTrip) {
  NvmPool pool(16, NvmMode::kFast, Topo(1, 2));
  DelegationPool delegation(pool);

  const char payload[] = "delegated read payload";
  std::memcpy(pool.PageAddress(3), payload, sizeof(payload));
  char out[sizeof(payload)] = {};
  std::atomic<uint32_t> pending{1};
  DelegationRequest req;
  req.op = DelegationRequest::Op::kRead;
  req.nvm = pool.PageAddress(3);
  req.dram = out;
  req.len = sizeof(payload);
  req.pending = &pending;
  delegation.Submit(req);
  delegation.Wait(pending);
  EXPECT_STREQ(out, payload);
}

TEST(DelegationTest, BatchSplitsAtNodeStripeBoundaries) {
  NvmPool pool(64, NvmMode::kFast, Topo(4, 1));
  DelegationPool delegation(pool);
  const size_t stripe = pool.NodeStripeBytes();
  ASSERT_EQ(stripe, 16 * kPageSize);

  // 2.5 stripes starting at the base: must split into exactly 3 node-contained requests.
  const size_t len = 2 * stripe + stripe / 2;
  std::vector<char> src(len);
  for (size_t i = 0; i < len; ++i) {
    src[i] = static_cast<char>(i * 31);
  }
  DelegationBatch batch(delegation);
  batch.AddWrite(pool.base(), src.data(), len, /*persist=*/true);
  EXPECT_EQ(batch.requests(), 3u);
  EXPECT_EQ(batch.nodes_touched(), 3);
  batch.Submit();
  batch.Wait();
  EXPECT_EQ(std::memcmp(pool.base(), src.data(), len), 0);
}

TEST(DelegationTest, OneFencePerBatchPerNode) {
  NvmPool pool(64, NvmMode::kFast, Topo(4, 1));
  DelegationPool delegation(pool);
  const size_t stripe = pool.NodeStripeBytes();

  // A batched operation of `len` bytes starting at a stripe boundary touches
  // ceil(len / stripe) nodes and must fence exactly once on each — even when every node
  // receives many chunks.
  for (size_t stripes = 1; stripes <= 4; ++stripes) {
    const size_t len = stripes * stripe;
    std::vector<char> src(len, 'f');
    pool.stats().Reset();
    DelegationBatch batch(delegation);
    // Feed page-sized chunks, the way ArckFS's write loop does.
    for (size_t off = 0; off < len; off += kPageSize) {
      batch.AddWrite(pool.base() + off, src.data() + off, kPageSize, /*persist=*/true);
    }
    EXPECT_EQ(batch.requests(), len / kPageSize);
    batch.Submit();
    batch.Wait();
    const uint64_t expected = (len + stripe - 1) / stripe;  // == stripes
    EXPECT_EQ(pool.stats().fences.load(), expected)
        << "batched delegation must fence once per node per batch (" << stripes
        << " stripes)";
  }

  // The pre-batch behavior for contrast: standalone chunks fence once per chunk.
  pool.stats().Reset();
  std::vector<char> src(stripe, 'g');
  std::atomic<uint32_t> pending{0};
  const size_t chunks = stripe / kPageSize;
  pending.store(static_cast<uint32_t>(chunks));
  for (size_t off = 0; off < stripe; off += kPageSize) {
    DelegationRequest req;
    req.op = DelegationRequest::Op::kWrite;
    req.nvm = pool.base() + off;
    req.dram = src.data() + off;
    req.len = kPageSize;
    req.pending = &pending;
    delegation.Submit(req);
  }
  delegation.Wait(pending);
  EXPECT_EQ(pool.stats().fences.load(), chunks);
}

TEST(DelegationTest, BatchedWriteIsDurableInTrackingMode) {
  // End-to-end ordering check: after Wait(), every chunk's lines reached the persisted
  // image (the per-node fence ran after all of that node's persists).
  NvmPool pool(32, NvmMode::kTracking, Topo(2, 2));
  DelegationPool delegation(pool);
  const size_t stripe = pool.NodeStripeBytes();
  std::vector<char> src(3 * kPageSize, 'd');
  DelegationBatch batch(delegation);
  for (int node = 0; node < 2; ++node) {
    batch.AddWrite(pool.base() + node * stripe, src.data(), src.size(), /*persist=*/true);
  }
  batch.Submit();
  batch.Wait();
  EXPECT_EQ(pool.UnpersistedLineCount(), 0u);
  pool.SimulateCrash();  // Strictest mode: only fenced lines survive.
  for (int node = 0; node < 2; ++node) {
    EXPECT_EQ(std::memcmp(pool.base() + node * stripe, src.data(), src.size()), 0)
        << "node " << node << " lost batched data across a crash";
  }
}

TEST(DelegationTest, NodeRoutingCorrectness) {
  DelegationConfig config = FastParkConfig();
  config.steal = false;  // Deterministic routing: completions stay on the home node.
  NvmPool pool(64, NvmMode::kFast, Topo(4, 1));
  DelegationPool delegation(pool, config);
  const size_t stripe = pool.NodeStripeBytes();

  std::vector<char> src(kPageSize, 'r');
  const int per_node[] = {5, 0, 3, 7};
  for (int node = 0; node < 4; ++node) {
    for (int i = 0; i < per_node[node]; ++i) {
      DelegationBatch batch(delegation);
      batch.AddWrite(pool.base() + node * stripe + i * kPageSize, src.data(), kPageSize,
                     true);
      batch.Submit();
      batch.Wait();
    }
  }
  for (int node = 0; node < 4; ++node) {
    EXPECT_EQ(delegation.node_stats(node).submitted.load(),
              static_cast<uint64_t>(per_node[node]))
        << "node " << node;
    EXPECT_EQ(delegation.node_stats(node).completed.load(),
              static_cast<uint64_t>(per_node[node]))
        << "node " << node;
    EXPECT_EQ(delegation.node_stats(node).batches.load(),
              static_cast<uint64_t>(per_node[node]))
        << "node " << node;
  }
}

TEST(DelegationTest, ConcurrentBatchSubmitDrainFromEightThreads) {
  NvmPool pool(1 << 10, NvmMode::kFast, Topo(4, 2));
  DelegationPool delegation(pool);
  const size_t stripe = pool.NodeStripeBytes();
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  // Each thread owns 4 pages per node and repeatedly writes a recognizable pattern.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<char> buf(4 * kPageSize * 4);
      for (int round = 0; round < kRounds; ++round) {
        std::memset(buf.data(), (t * 16 + round) & 0x7f, buf.size());
        DelegationBatch batch(delegation);
        size_t src_off = 0;
        for (int node = 0; node < 4; ++node) {
          char* dst = pool.base() + node * stripe + static_cast<size_t>(t) * 4 * kPageSize;
          batch.AddWrite(dst, buf.data() + src_off, 4 * kPageSize, /*persist=*/true);
          src_off += 4 * kPageSize;
        }
        batch.Submit();
        batch.Wait();
        // The batch completed: the thread's pages hold exactly this round's byte.
        for (int node = 0; node < 4; ++node) {
          const char* dst =
              pool.base() + node * stripe + static_cast<size_t>(t) * 4 * kPageSize;
          ASSERT_EQ(dst[0], static_cast<char>((t * 16 + round) & 0x7f));
          ASSERT_EQ(dst[4 * kPageSize - 1], static_cast<char>((t * 16 + round) & 0x7f));
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(delegation.submitted(), delegation.completed());
  EXPECT_EQ(delegation.completed(), static_cast<uint64_t>(kThreads) * kRounds * 4);
}

TEST(DelegationTest, IdlePoolParksAllWorkersAndWakeupsStayFlat) {
  NvmPool pool(64, NvmMode::kFast, Topo(2, 2));
  DelegationPool delegation(pool, FastParkConfig());
  const uint32_t total_workers = 2 * 2;

  ASSERT_TRUE(WaitForAllParked(delegation, total_workers))
      << "idle workers must park, not busy-spin";
  const uint64_t wakeups_before = delegation.wakeups();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(delegation.wakeups(), wakeups_before)
      << "an idle pool must not wake (or spin) at all";
  EXPECT_EQ(delegation.parked_workers(), total_workers);

  // And parked workers must wake for new work: no lost wakeup.
  std::vector<char> src(kPageSize, 'w');
  DelegationBatch batch(delegation);
  batch.AddWrite(pool.base(), src.data(), kPageSize, true);
  batch.Submit();
  batch.Wait();
  EXPECT_EQ(std::memcmp(pool.base(), src.data(), kPageSize), 0);
  EXPECT_GE(delegation.wakeups(), wakeups_before + 1);
}

TEST(DelegationTest, ParkWakeStressNoLostWakeup) {
  NvmPool pool(64, NvmMode::kFast, Topo(2, 1));
  DelegationPool delegation(pool, FastParkConfig());
  std::vector<char> src(256, 's');
  for (int i = 0; i < 100; ++i) {
    // Let every worker park, then submit: the submission must always complete.
    ASSERT_TRUE(WaitForAllParked(delegation, 2)) << "iteration " << i;
    DelegationBatch batch(delegation);
    batch.AddWrite(pool.base() + (i % 16) * kPageSize, src.data(), src.size(), true);
    batch.Submit();
    batch.Wait();
  }
  EXPECT_EQ(delegation.completed(), 100u);
  EXPECT_GE(delegation.parks(), 100u);
}

TEST(DelegationTest, WorkStealingDrainsSkewedLoad) {
  DelegationConfig config = FastParkConfig();
  config.steal = true;
  config.steal_wake_threshold = 8;
  NvmPool pool(1 << 10, NvmMode::kFast, Topo(2, 1));
  DelegationPool delegation(pool, config);
  const size_t stripe = pool.NodeStripeBytes();

  std::vector<char> src(kPageSize, 'z');
  // Everything targets node 0; node 1's worker should steal into the burst. Repeat a few
  // rounds: stealing is opportunistic, but across rounds it must kick in.
  for (int round = 0; round < 20 && delegation.steals() == 0; ++round) {
    DelegationBatch batch(delegation);
    for (int i = 0; i < 256; ++i) {
      batch.AddWrite(pool.base() + (i % static_cast<int>(stripe / kPageSize)) * kPageSize,
                     src.data(), kPageSize, true);
    }
    batch.Submit();
    batch.Wait();
  }
  EXPECT_GT(delegation.node_stats(1).steals.load(), 0u)
      << "the idle node-1 worker never stole from node 0's backlog";
  EXPECT_EQ(delegation.submitted(), delegation.completed());
}

TEST(DelegationTest, StopWithInflightRequestsNeverStrandsWaiter) {
  for (int round = 0; round < 10; ++round) {
    NvmPool pool(1 << 10, NvmMode::kFast, Topo(2, 1));
    DelegationPool delegation(pool, FastParkConfig());
    std::vector<char> src(kPageSize, 'q');
    DelegationBatch batch(delegation);
    for (int i = 0; i < 128; ++i) {
      batch.AddWrite(pool.base() + i * kPageSize, src.data(), kPageSize, true);
    }
    batch.Submit();
    delegation.Stop();  // Races the workers; drain semantics must complete everything.
    batch.Wait();       // Must not hang.
    EXPECT_EQ(delegation.completed(), 128u);
    for (int i = 0; i < 128; ++i) {
      ASSERT_EQ(pool.base()[i * kPageSize], 'q') << "request " << i << " dropped";
    }
  }
}

TEST(DelegationTest, SubmitAfterStopExecutesInline) {
  NvmPool pool(32, NvmMode::kFast, Topo(2, 1));
  DelegationPool delegation(pool);
  delegation.Stop();

  char buf[128];
  std::memset(buf, 0x7e, sizeof(buf));
  std::atomic<uint32_t> pending{1};
  DelegationRequest req;
  req.op = DelegationRequest::Op::kWrite;
  req.nvm = pool.PageAddress(4);
  req.dram = buf;
  req.len = sizeof(buf);
  req.pending = &pending;
  delegation.Submit(req);  // No workers left: must run on this thread.
  delegation.Wait(pending);
  EXPECT_EQ(std::memcmp(pool.PageAddress(4), buf, sizeof(buf)), 0);
  EXPECT_EQ(delegation.completed(), 1u);

  // Batches after stop complete inline too.
  DelegationBatch batch(delegation);
  batch.AddWrite(pool.PageAddress(5), buf, sizeof(buf), true);
  batch.Submit();
  batch.Wait();
  EXPECT_EQ(std::memcmp(pool.PageAddress(5), buf, sizeof(buf)), 0);
}

TEST(DelegationTest, StopIsIdempotent) {
  NvmPool pool(16);
  DelegationPool delegation(pool, FastParkConfig());
  delegation.Stop();
  delegation.Stop();
}

TEST(DelegationFaultTest, WorkerFaultRetriesAndCompletes) {
  NvmPool pool(32, NvmMode::kFast, Topo(2, 1));
  FaultInjector injector(TestSeed());
  injector.Arm(kFaultDelegationWorker, FaultPolicy::Once());
  pool.set_fault_injector(&injector);
  DelegationPool delegation(pool);

  char buf[256];
  std::memset(buf, 0x3c, sizeof(buf));
  std::atomic<uint32_t> pending{1};
  DelegationRequest req;
  req.op = DelegationRequest::Op::kWrite;
  req.nvm = pool.PageAddress(4);
  req.dram = buf;
  req.len = sizeof(buf);
  req.pending = &pending;
  delegation.Submit(req);
  delegation.Wait(pending);  // The faulted chunk must still complete (via retry).
  EXPECT_EQ(std::memcmp(pool.PageAddress(4), buf, sizeof(buf)), 0);
  EXPECT_EQ(delegation.faults(), 1u);
  EXPECT_EQ(delegation.fault_retries(), 1u);
  EXPECT_EQ(delegation.inline_fallbacks(), 0u);
  EXPECT_EQ(delegation.completed(), 1u);
}

TEST(DelegationFaultTest, PersistentWorkerFaultFallsBackInline) {
  NvmPool pool(32, NvmMode::kFast, Topo(2, 1));
  FaultInjector injector(TestSeed());
  injector.Arm(kFaultDelegationWorker, FaultPolicy::Always());
  pool.set_fault_injector(&injector);
  DelegationConfig config;
  config.fault_max_retries = 2;
  DelegationPool delegation(pool, config);

  char buf[512];
  std::memset(buf, 0x6d, sizeof(buf));
  std::atomic<uint32_t> pending{1};
  DelegationRequest req;
  req.op = DelegationRequest::Op::kWrite;
  req.nvm = pool.PageAddress(20);
  req.dram = buf;
  req.len = sizeof(buf);
  req.pending = &pending;
  delegation.Submit(req);
  delegation.Wait(pending);  // Retries exhaust, then the inline fallback completes it.
  EXPECT_EQ(std::memcmp(pool.PageAddress(20), buf, sizeof(buf)), 0);
  EXPECT_EQ(delegation.faults(), 3u);  // Initial attempt + 2 retries, all faulted.
  EXPECT_EQ(delegation.fault_retries(), 2u);
  EXPECT_EQ(delegation.inline_fallbacks(), 1u);
  EXPECT_EQ(delegation.completed(), 1u);
}

TEST(DelegationFaultTest, BatchWithWorkerFaultsStillCompletesAndPersists) {
  NvmPool pool(64, NvmMode::kTracking, Topo(2, 2));
  FaultInjector injector(TestSeed());
  injector.Arm(kFaultDelegationWorker, FaultPolicy::EveryN(3));
  pool.set_fault_injector(&injector);
  DelegationPool delegation(pool);

  const size_t stripe = pool.NodeStripeBytes();
  std::vector<char> src(4 * kPageSize, 'F');
  DelegationBatch batch(delegation);
  // One AddWrite per page: 8 node-contained requests, so EveryN(3) faults several of
  // them (a batch share below kMaxRequestBytes is otherwise a single request).
  for (int node = 0; node < 2; ++node) {
    for (size_t page = 0; page < 4; ++page) {
      batch.AddWrite(pool.base() + node * stripe + page * kPageSize,
                     src.data() + page * kPageSize, kPageSize, /*persist=*/true);
    }
  }
  batch.Submit();
  batch.Wait();
  EXPECT_GT(delegation.faults(), 0u);
  EXPECT_EQ(pool.UnpersistedLineCount(), 0u)
      << "faulted chunks must still persist before the batch reports done";
  pool.SimulateCrash();
  for (int node = 0; node < 2; ++node) {
    EXPECT_EQ(std::memcmp(pool.base() + node * stripe, src.data(), src.size()), 0)
        << "node " << node;
  }
}

TEST(DelegationTest, ConcurrentStandaloneSubmitsFromManyThreads) {
  NvmPool pool(64, NvmMode::kFast, Topo(2, 2));
  DelegationPool delegation(pool);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::array<char, 64> buf;
      buf.fill(static_cast<char>(t + 1));
      std::atomic<uint32_t> pending{0};
      for (int i = 0; i < kPerThread; ++i) {
        pending.store(1, std::memory_order_relaxed);
        DelegationRequest req;
        req.op = DelegationRequest::Op::kWrite;
        req.nvm = pool.PageAddress(1 + (t * kPerThread + i) % 60) + t * 64;
        req.dram = buf.data();
        req.len = 64;
        req.pending = &pending;
        delegation.Submit(req);
        delegation.Wait(pending);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(delegation.submitted(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(delegation.completed(), delegation.submitted());
}

}  // namespace
}  // namespace trio
