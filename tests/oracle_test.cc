// Model-based property test: a long random operation sequence runs simultaneously
// against each file system and against a trivially correct in-memory reference model;
// after every operation the outcomes (status class, data read, directory contents, stat)
// must agree. This catches semantic divergence that targeted unit tests miss — and runs
// over every evaluated system, so all ten implementations must agree with POSIX-ish
// semantics and with each other.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>

#include "src/baselines/fs_factory.h"
#include "src/common/random.h"
#include "tests/test_seed.h"

namespace trio {
namespace {

// The reference model: paths -> contents, directories as a set.
class ModelFs {
 public:
  ModelFs() { dirs_.insert("/"); }

  static std::string ParentOf(const std::string& path) {
    const size_t slash = path.rfind('/');
    return slash == 0 ? "/" : path.substr(0, slash);
  }

  bool IsDir(const std::string& path) const { return dirs_.count(path) != 0; }
  bool IsFile(const std::string& path) const { return files_.count(path) != 0; }
  bool Exists(const std::string& path) const { return IsDir(path) || IsFile(path); }

  bool HasChildren(const std::string& dir) const {
    const std::string prefix = dir == "/" ? "/" : dir + "/";
    for (const auto& [path, _] : files_) {
      if (path.rfind(prefix, 0) == 0 &&
          path.find('/', prefix.size()) == std::string::npos) {
        return true;
      }
    }
    for (const std::string& path : dirs_) {
      if (path != dir && path.rfind(prefix, 0) == 0 &&
          path.find('/', prefix.size()) == std::string::npos) {
        return true;
      }
    }
    return false;
  }

  size_t ChildCount(const std::string& dir) const {
    const std::string prefix = dir == "/" ? "/" : dir + "/";
    size_t count = 0;
    for (const auto& [path, _] : files_) {
      count += path.rfind(prefix, 0) == 0 &&
                       path.find('/', prefix.size()) == std::string::npos
                   ? 1
                   : 0;
    }
    for (const std::string& path : dirs_) {
      count += path != dir && path.rfind(prefix, 0) == 0 &&
                       path.find('/', prefix.size()) == std::string::npos
                   ? 1
                   : 0;
    }
    return count;
  }

  std::set<std::string> dirs_;
  std::map<std::string, std::string> files_;
};

class OracleTest : public ::testing::TestWithParam<std::string> {
 protected:
  OracleTest() : instance_(MakeFs(GetParam())) {}

  FsInterface& fs() { return *instance_.fs; }

  FsInstance instance_;
  ModelFs model_;
};

TEST_P(OracleTest, RandomOpsAgreeWithModel) {
  Rng rng(TestSeed() + GetParam().size() * 1000 + 77);  // Different per system.
  std::vector<std::string> dir_pool = {"/"};
  auto random_name = [&] { return "n" + std::to_string(rng.Below(30)); };
  auto random_dir = [&] { return dir_pool[rng.Below(dir_pool.size())]; };
  auto join = [](const std::string& dir, const std::string& leaf) {
    return dir == "/" ? "/" + leaf : dir + "/" + leaf;
  };

  for (int step = 0; step < 800; ++step) {
    const int op = rng.Below(8);
    const std::string dir = random_dir();
    const std::string path = join(dir, random_name());
    switch (op) {
      case 0: {  // Create/overwrite a file with random content.
        if (model_.IsDir(path)) {
          break;  // Avoid open-a-directory divergence; covered by unit tests.
        }
        const std::string content(rng.Below(3 * kPageSize), 'a' + rng.Below(26));
        Result<Fd> fd = fs().Open(path, OpenFlags::CreateTrunc());
        ASSERT_TRUE(fd.ok()) << path << ": " << fd.status().ToString();
        if (!content.empty()) {
          ASSERT_TRUE(fs().Pwrite(*fd, content.data(), content.size(), 0).ok());
        }
        ASSERT_TRUE(fs().Close(*fd).ok());
        model_.files_[path] = content;
        break;
      }
      case 1: {  // Append to an existing file.
        if (!model_.IsFile(path)) {
          break;
        }
        const std::string extra(rng.Below(2000), 'z');
        Result<Fd> fd = fs().Open(path, OpenFlags::ReadWrite());
        ASSERT_TRUE(fd.ok());
        ASSERT_TRUE(
            fs().Pwrite(*fd, extra.data(), extra.size(), model_.files_[path].size())
                .ok());
        ASSERT_TRUE(fs().Close(*fd).ok());
        model_.files_[path] += extra;
        break;
      }
      case 2: {  // Read back and compare.
        if (model_.IsDir(path)) {
          break;  // open(dir, O_RDONLY) is legal; nothing to compare.
        }
        Result<Fd> fd = fs().Open(path, OpenFlags::ReadOnly());
        if (!model_.IsFile(path)) {
          EXPECT_TRUE(fd.status().Is(ErrorCode::kNotFound)) << path;
          break;
        }
        ASSERT_TRUE(fd.ok()) << path << ": " << fd.status().ToString();
        const std::string& expected = model_.files_[path];
        std::string got(expected.size() + 64, '\0');
        Result<size_t> n = fs().Pread(*fd, got.data(), got.size(), 0);
        ASSERT_TRUE(n.ok());
        got.resize(*n);
        EXPECT_EQ(got, expected) << path << " step " << step;
        ASSERT_TRUE(fs().Close(*fd).ok());
        break;
      }
      case 3: {  // Mkdir.
        Status status = fs().Mkdir(path);
        if (model_.Exists(path)) {
          EXPECT_TRUE(status.Is(ErrorCode::kExists)) << path << ": " << status.ToString();
        } else {
          ASSERT_TRUE(status.ok()) << path << ": " << status.ToString();
          model_.dirs_.insert(path);
          dir_pool.push_back(path);
        }
        break;
      }
      case 4: {  // Unlink.
        Status status = fs().Unlink(path);
        if (model_.IsFile(path)) {
          EXPECT_TRUE(status.ok()) << path << ": " << status.ToString();
          model_.files_.erase(path);
        } else if (model_.IsDir(path)) {
          EXPECT_TRUE(status.Is(ErrorCode::kIsDir)) << path;
        } else {
          EXPECT_TRUE(status.Is(ErrorCode::kNotFound)) << path;
        }
        break;
      }
      case 5: {  // Truncate.
        if (!model_.IsFile(path)) {
          break;
        }
        const uint64_t new_size = rng.Below(2 * kPageSize);
        ASSERT_TRUE(fs().Truncate(path, new_size).ok()) << path;
        std::string& content = model_.files_[path];
        if (new_size <= content.size()) {
          content.resize(new_size);
        } else {
          content.resize(new_size, '\0');
        }
        break;
      }
      case 6: {  // Rename a file within / across directories.
        const std::string to = join(random_dir(), random_name());
        if (!model_.IsFile(path) || model_.IsDir(to) || path == to) {
          break;
        }
        Status status = fs().Rename(path, to);
        ASSERT_TRUE(status.ok()) << path << " -> " << to << ": " << status.ToString();
        model_.files_[to] = model_.files_[path];
        model_.files_.erase(path);
        break;
      }
      default: {  // Stat + ReadDir consistency.
        Result<StatInfo> info = fs().Stat(path);
        if (model_.IsFile(path)) {
          ASSERT_TRUE(info.ok()) << path;
          EXPECT_EQ(info->size, model_.files_[path].size()) << path;
          EXPECT_TRUE(info->IsRegular());
        } else if (model_.IsDir(path)) {
          ASSERT_TRUE(info.ok()) << path;
          EXPECT_TRUE(info->IsDirectory());
        } else {
          EXPECT_TRUE(info.status().Is(ErrorCode::kNotFound)) << path;
        }
        Result<std::vector<DirEntryInfo>> entries = fs().ReadDir(dir);
        ASSERT_TRUE(entries.ok()) << dir;
        EXPECT_EQ(entries->size(), model_.ChildCount(dir)) << dir << " step " << step;
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFileSystems, OracleTest,
                         ::testing::ValuesIn(AllPosixFsNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace trio
