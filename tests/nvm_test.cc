// Unit tests for the emulated NVM pool: addressing, NUMA striping, persistence tracking
// and crash simulation. The delegation pool built on top of it is covered by
// tests/delegation_test.cc.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

#include "src/common/random.h"
#include "src/nvm/nvm.h"
#include "src/sim/fault_injector.h"
#include "tests/test_seed.h"

namespace trio {
namespace {

TEST(NvmPoolTest, PageAddressing) {
  NvmPool pool(64);
  EXPECT_EQ(pool.num_pages(), 64u);
  char* p5 = pool.PageAddress(5);
  EXPECT_EQ(pool.PageOf(p5), 5u);
  EXPECT_EQ(pool.PageOf(p5 + kPageSize - 1), 5u);
  EXPECT_EQ(pool.PageOf(p5 + kPageSize), 6u);
  EXPECT_TRUE(pool.Contains(p5));
  EXPECT_FALSE(pool.Contains(&pool));
}

TEST(NvmPoolTest, ZeroInitialized) {
  NvmPool pool(16);
  for (size_t i = 0; i < 16 * kPageSize; ++i) {
    ASSERT_EQ(pool.base()[i], 0);
  }
}

TEST(NvmPoolTest, NumaStriping) {
  NumaTopology topo;
  topo.num_nodes = 4;
  NvmPool pool(64, NvmMode::kFast, topo);
  EXPECT_EQ(pool.NodeOfPage(0), 0);
  EXPECT_EQ(pool.NodeOfPage(15), 0);
  EXPECT_EQ(pool.NodeOfPage(16), 1);
  EXPECT_EQ(pool.NodeOfPage(63), 3);
  EXPECT_EQ(pool.NodeFirstPage(1), 16u);
  EXPECT_EQ(pool.NodeLastPage(3), 64u);
}

TEST(NvmPoolTest, StatsCountWrites) {
  NvmPool pool(16);
  char buf[100] = {};
  pool.Write(pool.PageAddress(1), buf, sizeof(buf));
  EXPECT_EQ(pool.stats().bytes_written.load(), 100u);
  pool.Read(buf, pool.PageAddress(1), 50);
  EXPECT_EQ(pool.stats().bytes_read.load(), 50u);
  pool.PersistNow(pool.PageAddress(1), 100);
  EXPECT_GE(pool.stats().lines_flushed.load(), 2u);
  EXPECT_EQ(pool.stats().fences.load(), 1u);
}

TEST(CrashSimTest, UnpersistedStoreIsLost) {
  NvmPool pool(16, NvmMode::kTracking);
  const char data[] = "hello";
  pool.Write(pool.PageAddress(2), data, sizeof(data));
  EXPECT_GT(pool.UnpersistedLineCount(), 0u);
  pool.SimulateCrash();
  EXPECT_EQ(std::memcmp(pool.PageAddress(2), "\0\0\0\0\0\0", 6), 0);
}

TEST(CrashSimTest, PersistedStoreSurvives) {
  NvmPool pool(16, NvmMode::kTracking);
  const char data[] = "hello";
  pool.Write(pool.PageAddress(2), data, sizeof(data));
  pool.PersistNow(pool.PageAddress(2), sizeof(data));
  EXPECT_EQ(pool.UnpersistedLineCount(), 0u);
  pool.SimulateCrash();
  EXPECT_EQ(std::memcmp(pool.PageAddress(2), "hello", 6), 0);
}

TEST(CrashSimTest, ClwbWithoutFenceIsNotDurable) {
  NvmPool pool(16, NvmMode::kTracking);
  const char data[] = "abc";
  pool.Write(pool.PageAddress(1), data, sizeof(data));
  pool.Persist(pool.PageAddress(1), sizeof(data));  // clwb issued, no fence.
  pool.SimulateCrash();
  EXPECT_EQ(pool.PageAddress(1)[0], 0);
}

TEST(CrashSimTest, RedirtyAfterClwbRequiresNewFlush) {
  NvmPool pool(16, NvmMode::kTracking);
  char* addr = pool.PageAddress(1);
  pool.Write(addr, "AAAA", 4);
  pool.Persist(addr, 4);
  pool.Fence();  // "AAAA" durable.
  pool.Write(addr, "BBBB", 4);  // Re-dirtied, not flushed.
  pool.SimulateCrash();
  EXPECT_EQ(std::memcmp(addr, "AAAA", 4), 0);
}

TEST(CrashSimTest, CommitStore64IsAtomicDurable) {
  NvmPool pool(16, NvmMode::kTracking);
  auto* slot = reinterpret_cast<uint64_t*>(pool.PageAddress(3));
  pool.CommitStore64(slot, 0xdeadbeefull);
  pool.SimulateCrash();
  EXPECT_EQ(pool.Load64(slot), 0xdeadbeefull);
}

TEST(CrashSimTest, EvictionMayPersistUnflushedLines) {
  // With evict probability 1.0 every dirty line survives the crash.
  NvmPool pool(16, NvmMode::kTracking);
  Rng rng(TestSeed());
  pool.Write(pool.PageAddress(2), "xyz", 3);
  pool.SimulateCrash(&rng, /*evict_probability=*/1.0);
  EXPECT_EQ(std::memcmp(pool.PageAddress(2), "xyz", 3), 0);
}

TEST(FaultSimTest, TornPersistLosesLinesAcrossACrash) {
  NvmPool pool(16, NvmMode::kTracking);
  FaultInjector injector(TestSeed());
  injector.Arm(kFaultNvmTornPersist, FaultPolicy::Once());
  pool.set_fault_injector(&injector);

  char* base = pool.PageAddress(2);
  std::vector<char> data(4 * kCacheLineSize, 'T');
  pool.Write(base, data.data(), data.size());
  pool.Persist(base, data.size());  // Torn: a non-empty subset of the 4 lines is dropped.
  pool.Fence();
  EXPECT_EQ(injector.StatsFor(kFaultNvmTornPersist).fires, 1u);
  // Dropped lines stayed dirty — they are NOT durable despite the persist+fence.
  EXPECT_GT(pool.UnpersistedLineCount(), 0u);
  pool.SimulateCrash();
  // The last line of a torn persist is always among the dropped set.
  EXPECT_EQ(base[3 * kCacheLineSize], 0);
}

TEST(FaultSimTest, TornPersistIsRepairedByRepersisting) {
  NvmPool pool(16, NvmMode::kTracking);
  FaultInjector injector(TestSeed());
  injector.Arm(kFaultNvmTornPersist, FaultPolicy::Once());
  pool.set_fault_injector(&injector);

  char* base = pool.PageAddress(2);
  std::vector<char> data(4 * kCacheLineSize, 'R');
  pool.Write(base, data.data(), data.size());
  pool.PersistNow(base, data.size());  // Torn (fires once).
  EXPECT_GT(pool.UnpersistedLineCount(), 0u);
  pool.PersistNow(base, data.size());  // Clean retry: dropped lines are still dirty.
  EXPECT_EQ(pool.UnpersistedLineCount(), 0u);
  pool.SimulateCrash();
  EXPECT_EQ(std::memcmp(base, data.data(), data.size()), 0);
}

TEST(FaultSimTest, SingleLinePersistIsNeverTorn) {
  // A torn persist must drop a strict subset only when there is more than one line.
  NvmPool pool(16, NvmMode::kTracking);
  FaultInjector injector(TestSeed());
  injector.Arm(kFaultNvmTornPersist, FaultPolicy::Always());
  pool.set_fault_injector(&injector);
  auto* slot = reinterpret_cast<uint64_t*>(pool.PageAddress(3));
  pool.CommitStore64(slot, 0x1234ull);  // 8-byte commit: one line, never torn.
  pool.SimulateCrash();
  EXPECT_EQ(pool.Load64(slot), 0x1234ull);
}

TEST(FaultSimTest, FenceBitFlipCorruptsExactlyOneBitDurably) {
  NvmPool pool(16, NvmMode::kTracking);
  FaultInjector injector(TestSeed());
  injector.Arm(kFaultNvmBitFlip, FaultPolicy::Once());
  pool.set_fault_injector(&injector);

  char* base = pool.PageAddress(2);
  std::vector<char> data(kCacheLineSize, 'b');
  pool.Write(base, data.data(), data.size());
  pool.PersistNow(base, data.size());
  EXPECT_EQ(injector.StatsFor(kFaultNvmBitFlip).fires, 1u);

  auto flipped_bits = [&] {
    int bits = 0;
    for (size_t i = 0; i < kCacheLineSize; ++i) {
      bits += __builtin_popcount(static_cast<unsigned char>(base[i] ^ 'b'));
    }
    return bits;
  };
  EXPECT_EQ(flipped_bits(), 1);  // Live image took the media error...
  pool.SimulateCrash();
  EXPECT_EQ(flipped_bits(), 1);  // ...and so did the persisted image.
}

TEST(FaultSimTest, InjectBitFlipSurvivesCrash) {
  NvmPool pool(16, NvmMode::kTracking);
  char* addr = pool.PageAddress(3);
  std::vector<char> data(kCacheLineSize, 'x');
  pool.Write(addr, data.data(), data.size());
  pool.PersistNow(addr, data.size());

  Rng rng(TestSeed());
  const size_t offset = pool.InjectBitFlip(addr, data.size(), rng);
  ASSERT_LT(offset, data.size());
  EXPECT_NE(addr[offset], 'x');
  pool.SimulateCrash();
  EXPECT_NE(addr[offset], 'x') << "media fault must survive a crash";
}

TEST(CrashSimTest, CacheLineGranularity) {
  // Persisting one line must not persist its neighbour.
  NvmPool pool(16, NvmMode::kTracking);
  char* base = pool.PageAddress(4);
  pool.Write(base, "A", 1);
  pool.Write(base + kCacheLineSize, "B", 1);
  pool.PersistNow(base, 1);  // Only the first line.
  pool.SimulateCrash();
  EXPECT_EQ(base[0], 'A');
  EXPECT_EQ(base[kCacheLineSize], 0);
}

}  // namespace
}  // namespace trio
