// Unit tests for the emulated NVM pool: addressing, NUMA striping, persistence tracking
// and crash simulation. The delegation pool built on top of it is covered by
// tests/delegation_test.cc.

#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "src/common/random.h"
#include "src/nvm/nvm.h"

namespace trio {
namespace {

TEST(NvmPoolTest, PageAddressing) {
  NvmPool pool(64);
  EXPECT_EQ(pool.num_pages(), 64u);
  char* p5 = pool.PageAddress(5);
  EXPECT_EQ(pool.PageOf(p5), 5u);
  EXPECT_EQ(pool.PageOf(p5 + kPageSize - 1), 5u);
  EXPECT_EQ(pool.PageOf(p5 + kPageSize), 6u);
  EXPECT_TRUE(pool.Contains(p5));
  EXPECT_FALSE(pool.Contains(&pool));
}

TEST(NvmPoolTest, ZeroInitialized) {
  NvmPool pool(16);
  for (size_t i = 0; i < 16 * kPageSize; ++i) {
    ASSERT_EQ(pool.base()[i], 0);
  }
}

TEST(NvmPoolTest, NumaStriping) {
  NumaTopology topo;
  topo.num_nodes = 4;
  NvmPool pool(64, NvmMode::kFast, topo);
  EXPECT_EQ(pool.NodeOfPage(0), 0);
  EXPECT_EQ(pool.NodeOfPage(15), 0);
  EXPECT_EQ(pool.NodeOfPage(16), 1);
  EXPECT_EQ(pool.NodeOfPage(63), 3);
  EXPECT_EQ(pool.NodeFirstPage(1), 16u);
  EXPECT_EQ(pool.NodeLastPage(3), 64u);
}

TEST(NvmPoolTest, StatsCountWrites) {
  NvmPool pool(16);
  char buf[100] = {};
  pool.Write(pool.PageAddress(1), buf, sizeof(buf));
  EXPECT_EQ(pool.stats().bytes_written.load(), 100u);
  pool.Read(buf, pool.PageAddress(1), 50);
  EXPECT_EQ(pool.stats().bytes_read.load(), 50u);
  pool.PersistNow(pool.PageAddress(1), 100);
  EXPECT_GE(pool.stats().lines_flushed.load(), 2u);
  EXPECT_EQ(pool.stats().fences.load(), 1u);
}

TEST(CrashSimTest, UnpersistedStoreIsLost) {
  NvmPool pool(16, NvmMode::kTracking);
  const char data[] = "hello";
  pool.Write(pool.PageAddress(2), data, sizeof(data));
  EXPECT_GT(pool.UnpersistedLineCount(), 0u);
  pool.SimulateCrash();
  EXPECT_EQ(std::memcmp(pool.PageAddress(2), "\0\0\0\0\0\0", 6), 0);
}

TEST(CrashSimTest, PersistedStoreSurvives) {
  NvmPool pool(16, NvmMode::kTracking);
  const char data[] = "hello";
  pool.Write(pool.PageAddress(2), data, sizeof(data));
  pool.PersistNow(pool.PageAddress(2), sizeof(data));
  EXPECT_EQ(pool.UnpersistedLineCount(), 0u);
  pool.SimulateCrash();
  EXPECT_EQ(std::memcmp(pool.PageAddress(2), "hello", 6), 0);
}

TEST(CrashSimTest, ClwbWithoutFenceIsNotDurable) {
  NvmPool pool(16, NvmMode::kTracking);
  const char data[] = "abc";
  pool.Write(pool.PageAddress(1), data, sizeof(data));
  pool.Persist(pool.PageAddress(1), sizeof(data));  // clwb issued, no fence.
  pool.SimulateCrash();
  EXPECT_EQ(pool.PageAddress(1)[0], 0);
}

TEST(CrashSimTest, RedirtyAfterClwbRequiresNewFlush) {
  NvmPool pool(16, NvmMode::kTracking);
  char* addr = pool.PageAddress(1);
  pool.Write(addr, "AAAA", 4);
  pool.Persist(addr, 4);
  pool.Fence();  // "AAAA" durable.
  pool.Write(addr, "BBBB", 4);  // Re-dirtied, not flushed.
  pool.SimulateCrash();
  EXPECT_EQ(std::memcmp(addr, "AAAA", 4), 0);
}

TEST(CrashSimTest, CommitStore64IsAtomicDurable) {
  NvmPool pool(16, NvmMode::kTracking);
  auto* slot = reinterpret_cast<uint64_t*>(pool.PageAddress(3));
  pool.CommitStore64(slot, 0xdeadbeefull);
  pool.SimulateCrash();
  EXPECT_EQ(pool.Load64(slot), 0xdeadbeefull);
}

TEST(CrashSimTest, EvictionMayPersistUnflushedLines) {
  // With evict probability 1.0 every dirty line survives the crash.
  NvmPool pool(16, NvmMode::kTracking);
  Rng rng(1);
  pool.Write(pool.PageAddress(2), "xyz", 3);
  pool.SimulateCrash(&rng, /*evict_probability=*/1.0);
  EXPECT_EQ(std::memcmp(pool.PageAddress(2), "xyz", 3), 0);
}

TEST(CrashSimTest, CacheLineGranularity) {
  // Persisting one line must not persist its neighbour.
  NvmPool pool(16, NvmMode::kTracking);
  char* base = pool.PageAddress(4);
  pool.Write(base, "A", 1);
  pool.Write(base + kCacheLineSize, "B", 1);
  pool.PersistNow(base, 1);  // Only the first line.
  pool.SimulateCrash();
  EXPECT_EQ(base[0], 'A');
  EXPECT_EQ(base[kCacheLineSize], 0);
}

}  // namespace
}  // namespace trio
