// Shared seed source for randomized crash/fault tests. Every Rng handed to
// SimulateCrash or a FaultInjector derives from TestSeed(), which is logged once and can
// be overridden with TRIO_TEST_SEED=<n> — so any randomized failure replays exactly from
// the seed printed by the failing run. Including this header also registers a gtest
// listener that reprints the effective seed under every FAILED test, so the replay
// command is visible right next to the failure instead of buried at the top of the log.

#ifndef TESTS_TEST_SEED_H_
#define TESTS_TEST_SEED_H_

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#include "src/common/logging.h"

namespace trio {

inline uint64_t TestSeed() {
  static const uint64_t seed = [] {
    const char* env = std::getenv("TRIO_TEST_SEED");
    const uint64_t value = env != nullptr ? std::strtoull(env, nullptr, 10) : 20260806ull;
    TRIO_LOG(kInfo) << "randomized tests using TRIO_TEST_SEED=" << value
                    << " (set the env var to replay)";
    return value;
  }();
  return seed;
}

namespace test_seed_internal {

// Printed once per failed test (not per failed assertion) so the replay incantation is
// adjacent to the [ FAILED ] line.
class SeedOnFailurePrinter : public ::testing::EmptyTestEventListener {
 public:
  void OnTestEnd(const ::testing::TestInfo& info) override {
    if (info.result() != nullptr && info.result()->Failed()) {
      std::printf("[  SEED    ] replay with TRIO_TEST_SEED=%llu %s.%s\n",
                  static_cast<unsigned long long>(TestSeed()), info.test_suite_name(),
                  info.name());
      std::fflush(stdout);
    }
  }
};

// One registration per binary (inline variable), run before main; gtest keeps listeners
// appended before InitGoogleTest.
inline const bool seed_printer_registered = [] {
  ::testing::UnitTest::GetInstance()->listeners().Append(new SeedOnFailurePrinter);
  return true;
}();

}  // namespace test_seed_internal
}  // namespace trio

#endif  // TESTS_TEST_SEED_H_
