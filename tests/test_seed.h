// Shared seed source for randomized crash/fault tests. Every Rng handed to
// SimulateCrash or a FaultInjector derives from TestSeed(), which is logged once and can
// be overridden with TRIO_TEST_SEED=<n> — so any randomized failure replays exactly from
// the seed printed by the failing run.

#ifndef TESTS_TEST_SEED_H_
#define TESTS_TEST_SEED_H_

#include <cstdint>
#include <cstdlib>

#include "src/common/logging.h"

namespace trio {

inline uint64_t TestSeed() {
  static const uint64_t seed = [] {
    const char* env = std::getenv("TRIO_TEST_SEED");
    const uint64_t value = env != nullptr ? std::strtoull(env, nullptr, 10) : 20260806ull;
    TRIO_LOG(kInfo) << "randomized tests using TRIO_TEST_SEED=" << value
                    << " (set the env var to replay)";
    return value;
  }();
  return seed;
}

}  // namespace trio

#endif  // TESTS_TEST_SEED_H_
