// Security-boundary tests at the ArckFS level: per-user access control through the
// shadow inode table (I4 ground truth), chmod/chown flows, delegation-enabled end-to-end
// operation, and KVFS's enumeration API.

#include <gtest/gtest.h>

#include <memory>

#include "src/kernel/controller.h"
#include "src/kvfs/kvfs.h"
#include "src/libfs/arckfs.h"

namespace trio {
namespace {

class SecurityBoundaryTest : public ::testing::Test {
 protected:
  SecurityBoundaryTest() : pool_(8192) {
    FormatOptions options;
    options.max_inodes = 2048;
    TRIO_CHECK_OK(Format(pool_, options));
    kernel_ = std::make_unique<KernelController>(pool_);
    TRIO_CHECK_OK(kernel_->Mount());
  }

  std::unique_ptr<ArckFs> FsForUser(uint32_t uid, uint32_t gid = 0) {
    ArckFsConfig config;
    config.uid = uid;
    config.gid = gid;
    return std::make_unique<ArckFs>(*kernel_, config);
  }

  NvmPool pool_;
  std::unique_ptr<KernelController> kernel_;
};

TEST_F(SecurityBoundaryTest, OtherUserCannotWritePrivateFile) {
  auto alice = FsForUser(100);
  auto mallory = FsForUser(200);

  // Root dir is 0755 owned by uid 0; creating there needs root write permission...
  // which 0755 denies to non-owners. Open up a world-writable area first as root.
  auto admin = FsForUser(0);
  ASSERT_TRUE(admin->Mkdir("/home", 0777).ok());

  Result<Fd> fd = alice->Open("/home/diary", OpenFlags::CreateRw(), 0600);
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  ASSERT_TRUE(alice->Pwrite(*fd, "secret", 6, 0).ok());
  ASSERT_TRUE(alice->Close(*fd).ok());
  ASSERT_TRUE(alice->ReleaseFile("/home/diary").ok());

  // Mallory's LibFS runs with uid 200: the kernel's shadow inode (0600, uid 100)
  // refuses both read and write grants.
  EXPECT_TRUE(mallory->Open("/home/diary", OpenFlags::ReadOnly())
                  .status()
                  .Is(ErrorCode::kPermission));
  EXPECT_TRUE(mallory->Open("/home/diary", OpenFlags::ReadWrite())
                  .status()
                  .Is(ErrorCode::kPermission));
}

TEST_F(SecurityBoundaryTest, ChmodOpensAccess) {
  auto admin = FsForUser(0);
  auto alice = FsForUser(100);
  auto bob = FsForUser(200);
  ASSERT_TRUE(admin->Mkdir("/pub", 0777).ok());
  Result<Fd> fd = alice->Open("/pub/note", OpenFlags::CreateRw(), 0600);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(alice->Pwrite(*fd, "hi", 2, 0).ok());
  ASSERT_TRUE(alice->Close(*fd).ok());
  ASSERT_TRUE(alice->ReleaseFile("/pub/note").ok());

  EXPECT_TRUE(bob->Open("/pub/note", OpenFlags::ReadOnly())
                  .status()
                  .Is(ErrorCode::kPermission));
  // Owner relaxes the mode (flows through the kernel: shadow inode is ground truth).
  ASSERT_TRUE(alice->Chmod("/pub/note", 0644).ok());
  Result<Fd> bob_fd = bob->Open("/pub/note", OpenFlags::ReadOnly());
  ASSERT_TRUE(bob_fd.ok()) << bob_fd.status().ToString();
  ASSERT_TRUE(bob->Close(*bob_fd).ok());
  // Still no write for bob.
  EXPECT_TRUE(bob->Open("/pub/note", OpenFlags::ReadWrite())
                  .status()
                  .Is(ErrorCode::kPermission));
}

TEST_F(SecurityBoundaryTest, NonOwnerChmodRejected) {
  auto admin = FsForUser(0);
  auto alice = FsForUser(100);
  auto mallory = FsForUser(200);
  ASSERT_TRUE(admin->Mkdir("/pub", 0777).ok());
  Result<Fd> fd = alice->Open("/pub/f", OpenFlags::CreateRw(), 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(alice->Close(*fd).ok());
  ASSERT_TRUE(alice->ReleaseFile("/pub/f").ok());
  EXPECT_TRUE(mallory->Chmod("/pub/f", 0777).Is(ErrorCode::kPermission));
}

TEST_F(SecurityBoundaryTest, DelegationEnabledEndToEnd) {
  kernel_->StartDelegation();
  ArckFsConfig config;
  config.use_delegation = true;
  ArckFs fs(*kernel_, config);

  // Large writes/reads cross the delegation ring; everything must still round-trip.
  Result<Fd> fd = fs.Open("/bulk", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  std::string data(256 * 1024, '\0');
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<char>('a' + i % 23);
  }
  ASSERT_TRUE(fs.Pwrite(*fd, data.data(), data.size(), 0).ok());
  std::string out(data.size(), '\0');
  Result<size_t> n = fs.Pread(*fd, out.data(), out.size(), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
  ASSERT_TRUE(fs.Close(*fd).ok());
  EXPECT_GT(kernel_->delegation()->submitted(), 0u);
}

TEST_F(SecurityBoundaryTest, KvfsKeysAndContains) {
  KvFs kv(*kernel_);
  for (int i = 0; i < 20; ++i) {
    const std::string value = "v" + std::to_string(i);
    ASSERT_TRUE(kv.Set("key" + std::to_string(i), value.data(), value.size()).ok());
  }
  ASSERT_TRUE(kv.Delete("key7").ok());
  Result<std::vector<std::string>> keys = kv.Keys();
  ASSERT_TRUE(keys.ok());
  EXPECT_EQ(keys->size(), 19u);
  EXPECT_TRUE(kv.Contains("key3"));
  EXPECT_FALSE(kv.Contains("key7"));
}

}  // namespace
}  // namespace trio
