// Unit tests for src/common: status/result, rng, hash, locks, ring buffer, per-cpu, clock.

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/hash.h"
#include "src/common/mpmc_ring.h"
#include "src/common/per_cpu.h"
#include "src/common/random.h"
#include "src/common/range_lock.h"
#include "src/common/result.h"
#include "src/common/rwlock.h"
#include "tests/test_seed.h"
#include "src/common/spinlock.h"
#include "src/common/status.h"

namespace trio {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), ErrorCode::kOk);
  EXPECT_EQ(s.ToString(), "ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFound("no such file 'x'");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.Is(ErrorCode::kNotFound));
  EXPECT_EQ(s.ToString(), "not_found: no such file 'x'");
}

TEST(StatusTest, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInternal); ++c) {
    EXPECT_STRNE(ErrorCodeName(static_cast<ErrorCode>(c)), "unknown");
  }
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto fails = []() -> Status { return Busy("locked"); };
  auto wrapper = [&]() -> Status {
    TRIO_RETURN_IF_ERROR(fails());
    return OkStatus();
  };
  EXPECT_TRUE(wrapper().Is(ErrorCode::kBusy));
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = NoSpace("full");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().Is(ErrorCode::kNoSpace));
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto produce = [](bool fail) -> Result<int> {
    if (fail) {
      return IoError("boom");
    }
    return 7;
  };
  auto consume = [&](bool fail) -> Result<int> {
    TRIO_ASSIGN_OR_RETURN(int v, produce(fail));
    return v + 1;
  };
  EXPECT_EQ(*consume(false), 8);
  EXPECT_TRUE(consume(true).status().Is(ErrorCode::kIo));
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(TestSeed());
  Rng b(TestSeed());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(TestSeed());
  Rng b(TestSeed() + 1);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.Next() == b.Next() ? 1 : 0;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(TestSeed());
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(TestSeed() + 1);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(TestSeed() + 2);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(HashTest, StableAndDistinct) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashTest, LowBitsSpread) {
  // Bucket index uses low bits; sequential names must not collide pathologically.
  std::set<uint64_t> buckets;
  for (int i = 0; i < 256; ++i) {
    buckets.insert(HashString("file" + std::to_string(i)) % 64);
  }
  EXPECT_GT(buckets.size(), 32u);
}

TEST(SpinLockTest, MutualExclusion) {
  SpinLock lock;
  int counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter, 40000);
}

TEST(SpinLockTest, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

template <typename LockT>
void ExerciseRwLock() {
  LockT lock;
  int64_t value = 0;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.lock();
        int64_t v = value;
        value = v + 1;
        lock.unlock();
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        lock.lock_shared();
        if (value < 0) {
          failed = true;
        }
        lock.unlock_shared();
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(value, 4000);
  EXPECT_FALSE(failed);
}

TEST(RwLockTest, WritersAreExclusive) { ExerciseRwLock<RwLock>(); }

TEST(BravoRwLockTest, WritersAreExclusive) { ExerciseRwLock<BravoRwLock>(); }

TEST(RwLockTest, TryLockShared) {
  RwLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock_shared());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock_shared());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock_shared();
}

TEST(BravoRwLockTest, ReaderFastPathThenWriterRevokes) {
  BravoRwLock lock;
  lock.lock_shared();
  lock.unlock_shared();
  lock.lock();  // Must drain any fast-path readers without deadlock.
  lock.unlock();
  lock.lock_shared();
  lock.unlock_shared();
}

TEST(RangeLockTest, DisjointWritersProceed) {
  RangeLock lock;
  lock.LockRange(0, RangeLock::kSegmentSize, /*exclusive=*/true);
  // A disjoint range must not block (would deadlock this single thread if it did).
  lock.LockRange(RangeLock::kSegmentSize, RangeLock::kSegmentSize, /*exclusive=*/true);
  lock.UnlockRange(RangeLock::kSegmentSize, RangeLock::kSegmentSize, true);
  lock.UnlockRange(0, RangeLock::kSegmentSize, true);
}

TEST(RangeLockTest, ConcurrentReadersSameRange) {
  RangeLock lock;
  lock.LockRange(0, 100, /*exclusive=*/false);
  lock.LockRange(0, 100, /*exclusive=*/false);
  lock.UnlockRange(0, 100, false);
  lock.UnlockRange(0, 100, false);
}

TEST(RangeLockTest, ZeroLengthIsNoop) {
  RangeLock lock;
  lock.LockRange(0, 0, true);
  lock.UnlockRange(0, 0, true);
}

TEST(RangeLockTest, WriterExcludesOverlappingWriter) {
  RangeLock lock;
  lock.LockRange(0, 4096, true);
  std::atomic<bool> acquired{false};
  std::thread other([&] {
    lock.LockRange(100, 10, true);
    acquired = true;
    lock.UnlockRange(100, 10, true);
  });
  // Give the other thread a chance; it must be blocked.
  for (int i = 0; i < 100 && !acquired; ++i) {
    std::this_thread::yield();
  }
  EXPECT_FALSE(acquired.load());
  lock.UnlockRange(0, 4096, true);
  other.join();
  EXPECT_TRUE(acquired.load());
}

TEST(MpmcRingTest, FifoSingleThread) {
  MpmcRing<int> ring(8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.TryPush(i));
  }
  EXPECT_FALSE(ring.TryPush(99));  // Full.
  int out = -1;
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(ring.TryPop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(out));  // Empty.
}

TEST(MpmcRingTest, ConcurrentProducersConsumers) {
  MpmcRing<uint64_t> ring(64);
  constexpr int kPerProducer = 5000;
  std::atomic<uint64_t> sum{0};
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ring.Push(static_cast<uint64_t>(p * kPerProducer + i));
      }
    });
  }
  for (int c = 0; c < 2; ++c) {
    threads.emplace_back([&] {
      uint64_t v;
      while (consumed.load() < 2 * kPerProducer) {
        if (ring.TryPop(v)) {
          sum.fetch_add(v);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  const uint64_t n = 2 * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

TEST(SpscRingTest, FifoAndBoundsSingleThread) {
  SpscRing<int> ring(8);
  for (int round = 0; round < 3; ++round) {  // Wraps exercise the sequence arithmetic.
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(ring.TryPush(round * 8 + i));
    }
    EXPECT_FALSE(ring.TryPush(99));  // Full.
    int out = -1;
    for (int i = 0; i < 8; ++i) {
      EXPECT_TRUE(ring.TryPop(out));
      EXPECT_EQ(out, round * 8 + i);
    }
    EXPECT_FALSE(ring.TryPop(out));  // Empty.
  }
}

TEST(SpscRingTest, OrderPreservedAcrossThreads) {
  SpscRing<uint64_t> ring(16);
  constexpr uint64_t kItems = 20000;
  std::thread producer([&] {
    for (uint64_t i = 0; i < kItems; ++i) {
      while (!ring.TryPush(i)) {
        std::this_thread::yield();
      }
    }
  });
  uint64_t expected = 0;
  uint64_t v;
  while (expected < kItems) {
    if (!ring.TryPop(v)) {
      std::this_thread::yield();
      continue;
    }
    ASSERT_EQ(v, expected);  // SPSC must be strictly FIFO, no loss, no duplication.
    ++expected;
  }
  producer.join();
  EXPECT_FALSE(ring.TryPop(v));
}

TEST(SpscRingTest, BatchHooksUseFastPath) {
  SpscRing<int> ring(8);
  const int items[5] = {1, 2, 3, 4, 5};
  EXPECT_EQ(ring.TryPushBatch(items, 5), 5u);
  EXPECT_EQ(ring.ApproxSize(), 5u);
  int out[8] = {};
  EXPECT_EQ(ring.TryPopBatch(out, 8), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(out[i], items[i]);
  }
  EXPECT_TRUE(ring.ApproxEmpty());
}

TEST(PerCpuTest, ShardsAreIndependent) {
  PerCpu<int> counters(4);
  counters.Shard(0) = 1;
  counters.Shard(1) = 2;
  EXPECT_EQ(counters.Shard(0), 1);
  EXPECT_EQ(counters.Shard(1), 2);
  int total = 0;
  counters.ForEach([&](int& v) { total += v; });
  EXPECT_EQ(total, 3);
}

TEST(PerCpuTest, LocalIsStablePerThread) {
  PerCpu<int> counters(8);
  counters.Local() = 42;
  EXPECT_EQ(counters.Local(), 42);
}

TEST(FakeClockTest, AdvancesManually) {
  FakeClock clock;
  const uint64_t t0 = clock.NowNs();
  clock.AdvanceMs(5);
  EXPECT_EQ(clock.NowNs(), t0 + 5000000ull);
}

TEST(SystemClockTest, Monotonic) {
  SystemClock* clock = SystemClock::Instance();
  const uint64_t a = clock->NowNs();
  const uint64_t b = clock->NowNs();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace trio
