// FaultSim end-to-end tests: the crash explorer sweeps every fence of multi-op workloads
// (fsck + POSIX-oracle clean at each point, double recovery converges), injected media
// faults are either contained by recovery or flagged with a minimal failing crash point,
// and the kernel's deadline watchdog resolves hung LibFS callbacks (fix_corruption,
// recovery programs, revoke) by escalation instead of hanging with them.

#include "src/sim/crash_explorer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/random.h"
#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "src/verifier/fsck.h"
#include "tests/test_seed.h"

namespace trio {
namespace {

constexpr size_t kPoolPages = 2048;

// A hang the test can end: hung callbacks block here until Release().
struct SharedLatch {
  std::mutex mutex;
  std::condition_variable cv;
  bool released = false;

  void Release() {
    {
      std::lock_guard<std::mutex> guard(mutex);
      released = true;
    }
    cv.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return released; });
  }
};

// Abandoned watchdog helpers finish a few instructions after the latch releases; give
// them time to exit before test-local state is destroyed.
void DrainAbandonedCallbacks(const std::shared_ptr<SharedLatch>& latch) {
  latch->Release();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
}

std::string ReadAll(ArckFs& fs, const std::string& path) {
  Result<StatInfo> info = fs.Stat(path);
  if (!info.ok()) {
    return "<stat failed>";
  }
  std::string data(info->size, '\0');
  Result<Fd> fd = fs.Open(path, OpenFlags::ReadOnly());
  if (!fd.ok()) {
    return "<open failed>";
  }
  if (info->size > 0 && !fs.Pread(*fd, data.data(), data.size(), 0).ok()) {
    (void)fs.Close(*fd);
    return "<read failed>";
  }
  (void)fs.Close(*fd);
  return data;
}

void WriteAll(ArckFs& fs, const std::string& path, const std::string& data) {
  Result<Fd> fd = fs.Open(path, OpenFlags::CreateTrunc());
  TRIO_CHECK(fd.ok()) << fd.status().ToString();
  TRIO_CHECK(fs.Pwrite(*fd, data.data(), data.size(), 0).ok());
  TRIO_CHECK_OK(fs.Close(*fd));
}

// Locates a root-directory child's dirent in core state (for targeted media faults).
DirentBlock* FindRootDirent(NvmPool& pool, std::string_view name) {
  Superblock* sb = SuperblockOf(pool);
  PageNumber index = sb->root.first_index_page;
  while (index != 0) {
    auto* ip = reinterpret_cast<IndexPage*>(pool.PageAddress(index));
    for (size_t i = 0; i < kIndexEntriesPerPage; ++i) {
      if (ip->entries[i] == 0) {
        continue;
      }
      auto* page = reinterpret_cast<DirDataPage*>(pool.PageAddress(ip->entries[i]));
      for (DirentBlock& slot : page->slots) {
        if (!slot.IsFree() && slot.Name() == name) {
          return &slot;
        }
      }
    }
    index = ip->next;
  }
  return nullptr;
}

CrashExplorerOptions SmallPoolOptions() {
  CrashExplorerOptions options;
  options.pool_pages = 1024;
  options.max_inodes = 256;
  options.seed = TestSeed();
  return options;
}

std::string FirstFailure(const CrashExplorerReport& report) {
  if (report.Clean()) {
    return "(clean)";
  }
  return "fence " + std::to_string(report.failures.front().fence) + ": " +
         report.failures.front().what;
}

// ---------------------------------------------------------------------------
// Exhaustive crash-point sweeps over multi-op workloads
// ---------------------------------------------------------------------------

TEST(CrashExplorerTest, CreateWriteRenameMixCleanAtEveryFence) {
  CrashExplorerOptions options = SmallPoolOptions();
  options.explore_recovery = true;
  options.max_recovery_points = 3;  // Sampled double-recovery at every outer point.
  CrashExplorer explorer(options);

  Result<CrashExplorerReport> report = explorer.Explore(
      [](ArckFs& fs) {
        TRIO_CHECK_OK(fs.Mkdir("/d"));
        WriteAll(fs, "/d/a", "alpha");
        WriteAll(fs, "/f", "beta-data!");
        TRIO_CHECK_OK(fs.Rename("/d/a", "/d/b"));
        TRIO_CHECK_OK(fs.Rename("/f", "/d/f"));
        WriteAll(fs, "/d/b", "ALPHA");
      },
      [](ArckFs& fs) -> Status {
        // Workload semantics: every name that exists holds a state some op prefix
        // produced — never a torn mix.
        for (const char* path : {"/d/a", "/d/b"}) {
          if (fs.Stat(path).ok()) {
            const std::string data = ReadAll(fs, path);
            if (data != "" && data != "alpha" && data != "ALPHA") {
              return Corrupted(std::string(path) + " holds torn content: " + data);
            }
          }
        }
        for (const char* path : {"/f", "/d/f"}) {
          if (fs.Stat(path).ok()) {
            const std::string data = ReadAll(fs, path);
            if (data != "" && data != "beta-data!") {
              return Corrupted(std::string(path) + " holds torn content: " + data);
            }
          }
        }
        return OkStatus();
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->Clean()) << FirstFailure(*report);
  EXPECT_GT(report->fences, 10u);
  // Exhaustive: every fence plus the initial state, nothing sampled out.
  EXPECT_EQ(report->explored, report->fences + 1);
  const CrashExplorerStats& stats = explorer.stats();
  EXPECT_EQ(stats.fences_recorded.load(), report->fences);
  EXPECT_EQ(stats.crash_points_explored.load(), report->explored);
  // (sampled_out is nonzero here only from the capped INNER recovery sweep; the outer
  // sweep's exhaustiveness is asserted by explored == fences + 1 above.)
  EXPECT_GE(stats.fsck_runs.load(), report->explored);
  EXPECT_GE(stats.oracle_checks.load(), report->explored);
  EXPECT_GT(stats.recovery_points_explored.load(), 0u);
  EXPECT_EQ(stats.faults_injected.load(), 0u);
}

TEST(CrashExplorerTest, AppendHeavyWorkloadCleanAtEveryFence) {
  CrashExplorerOptions options = SmallPoolOptions();
  CrashExplorer explorer(options);

  auto expected = std::make_shared<std::string>();
  Result<CrashExplorerReport> report = explorer.Explore(
      [expected](ArckFs& fs) {
        Result<Fd> fd = fs.Open("/log", OpenFlags::CreateTrunc());
        TRIO_CHECK(fd.ok());
        for (int i = 0; i < 10; ++i) {
          const std::string chunk(static_cast<size_t>(200 + i * 137),
                                  static_cast<char>('a' + i));
          TRIO_CHECK(fs.Pwrite(*fd, chunk.data(), chunk.size(), expected->size()).ok());
          *expected += chunk;
        }
        TRIO_CHECK_OK(fs.Close(*fd));
        WriteAll(fs, "/side", "sidecar");
      },
      [expected](ArckFs& fs) -> Status {
        Result<StatInfo> info = fs.Stat("/log");
        if (!info.ok()) {
          return OkStatus();  // Crash before the create committed.
        }
        if (info->size > expected->size()) {
          return Corrupted("/log grew past everything ever written");
        }
        const std::string data = ReadAll(fs, "/log");
        if (data != expected->substr(0, info->size)) {
          return Corrupted("/log is not a prefix of the appended stream at size " +
                           std::to_string(info->size));
        }
        return OkStatus();
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->Clean()) << FirstFailure(*report);
  EXPECT_GT(report->fences, 10u);
  EXPECT_EQ(report->explored, report->fences + 1);
  EXPECT_EQ(explorer.stats().sampled_out.load(), 0u);
}

TEST(CrashExplorerTest, RenameWorkloadCleanAtEveryFence) {
  // Satellite: rename-focused crash sweep. Same-directory rename, cross-directory
  // rename, and an overwriting rename each run under the undo journal; crashing at any
  // fence must leave every name holding a state some op prefix produced (old content,
  // new content, or absent) — never a torn dirent or a doubly-linked ino.
  CrashExplorerOptions options = SmallPoolOptions();
  options.explore_recovery = true;
  options.max_recovery_points = 2;
  CrashExplorer explorer(options);

  Result<CrashExplorerReport> report = explorer.Explore(
      [](ArckFs& fs) {
        TRIO_CHECK_OK(fs.Mkdir("/dir"));
        WriteAll(fs, "/one", "first");
        WriteAll(fs, "/two", "second");
        TRIO_CHECK_OK(fs.Rename("/one", "/renamed"));      // Same-directory.
        TRIO_CHECK_OK(fs.Rename("/renamed", "/dir/deep")); // Cross-directory.
        TRIO_CHECK_OK(fs.Rename("/two", "/dir/deep"));     // Overwrite existing file.
      },
      [](ArckFs& fs) -> Status {
        // The moving "first" payload exists under at most one of its three names.
        int live = 0;
        for (const char* path : {"/one", "/renamed"}) {
          if (fs.Stat(path).ok()) {
            ++live;
            const std::string data = ReadAll(fs, path);
            if (data != "" && data != "first") {
              return Corrupted(std::string(path) + " holds torn content: " + data);
            }
          }
        }
        if (fs.Stat("/dir/deep").ok()) {
          const std::string data = ReadAll(fs, "/dir/deep");
          if (data == "first") {
            ++live;
          } else if (data != "" && data != "second") {
            return Corrupted("/dir/deep holds torn content: " + data);
          }
        }
        if (live > 1) {
          return Corrupted("renamed file visible under multiple names");
        }
        if (fs.Stat("/two").ok()) {
          const std::string data = ReadAll(fs, "/two");
          if (data != "" && data != "second") {
            return Corrupted("/two holds torn content: " + data);
          }
        }
        return OkStatus();
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->Clean()) << FirstFailure(*report);
  EXPECT_GT(report->fences, 10u);
  EXPECT_EQ(report->explored, report->fences + 1);
}

TEST(CrashExplorerTest, RecoveryIsIdempotentAtEveryInnerFence) {
  // Satellite: crash at each fence INSIDE RunRecovery, run recovery again, and require
  // convergence. The workload leaves a file write-mapped (never released) and a rename
  // in its history, so every crash image has journal state and wmap-log entries — the
  // recovery being re-crashed does real work.
  CrashExplorerOptions options = SmallPoolOptions();
  options.explore_recovery = true;
  options.max_crash_points = 8;     // A few outer points...
  options.max_recovery_points = 0;  // ...with EXHAUSTIVE mid-recovery crashes at each.
  CrashExplorer explorer(options);

  Result<CrashExplorerReport> report = explorer.Explore([](ArckFs& fs) {
    Result<Fd> keep = fs.Open("/keep", OpenFlags::CreateTrunc());
    TRIO_CHECK(keep.ok());
    TRIO_CHECK(fs.Pwrite(*keep, "keep-data", 9, 0).ok());
    WriteAll(fs, "/x", "xdata");
    TRIO_CHECK_OK(fs.Rename("/x", "/y"));
    // /keep stays open (write-mapped) so the wmap log is non-empty at crash time.
  });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->Clean()) << FirstFailure(*report);
  const CrashExplorerStats& stats = explorer.stats();
  EXPECT_GT(stats.recovery_points_explored.load(), 0u);
  EXPECT_GT(stats.sampled_out.load(), 0u);  // The outer cap logged its truncation.
  // Every inner point re-ran recovery on a crashed-recovery image.
  EXPECT_GE(stats.recoveries.load(), stats.recovery_points_explored.load());
}

// ---------------------------------------------------------------------------
// Media faults through the explorer
// ---------------------------------------------------------------------------

TEST(CrashExplorerTest, TornPersistsAreFlaggedWithMinimalFailingFence) {
  // Every multi-line persist in the workload silently drops cachelines. Commit words
  // still land (8-byte commits are single-line), so some crash point exposes a committed
  // dirent whose name/metadata line never became durable — an I1/G2 violation recovery
  // cannot repair (the root directory cannot be removed). The explorer must flag it and
  // shrink to the earliest failing fence.
  CrashExplorerOptions options = SmallPoolOptions();
  options.faults.push_back({kFaultNvmTornPersist, FaultPolicy::Always()});
  options.max_failures = 3;  // A handful of failing points is proof enough.
  CrashExplorer explorer(options);

  Result<CrashExplorerReport> report = explorer.Explore([](ArckFs& fs) {
    WriteAll(fs, "/t1", "torn-one");
    WriteAll(fs, "/t2", "torn-two");
  });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(explorer.stats().faults_injected.load(), 0u)
      << "the torn-persist fault point was never exercised";
  EXPECT_GT(explorer.injector().StatsFor(kFaultNvmTornPersist).fires, 0u);
  EXPECT_FALSE(report->Clean())
      << "dropping cachelines from every persist cannot be crash-consistent";
  EXPECT_NE(report->minimal_failing_fence, SIZE_MAX);
  EXPECT_LE(report->minimal_failing_fence, report->failures.front().fence);
  EXPECT_EQ(explorer.stats().min_failing_fence.load(), report->minimal_failing_fence);
}

TEST(FaultSimKernelTest, BitFlipCaughtByVerifierAndRolledBack) {
  // A durable media bit-flip lands in a write-mapped file's dirent (its reserved bytes,
  // which I1 requires to be zero). The release-time verification must catch it and
  // restore the checkpointed state — content included.
  NvmPool pool(kPoolPages, NvmMode::kFast);
  FormatOptions format;
  format.max_inodes = 256;
  TRIO_CHECK_OK(Format(pool, format));
  KernelController kernel(pool);
  TRIO_CHECK_OK(kernel.Mount());
  ArckFs fs(kernel);

  WriteAll(fs, "/f", "hello");
  TRIO_CHECK_OK(fs.ReleaseFile("/f"));  // Verified + reconciled: kernel knows "hello".

  // Re-map for write: the kernel checkpoints the intact state.
  Result<Fd> fd = fs.Open("/f", OpenFlags::ReadWrite());
  ASSERT_TRUE(fd.ok());
  DirentBlock* dirent = FindRootDirent(pool, "f");
  ASSERT_NE(dirent, nullptr);
  Rng rng(TestSeed());
  pool.InjectBitFlip(dirent->reserved, sizeof(dirent->reserved), rng);

  TRIO_CHECK_OK(fs.Close(*fd));
  // Verification runs at release, fails, and the kernel repairs via checkpoint rollback —
  // so the release itself succeeds: the corruption was resolved, not propagated.
  EXPECT_TRUE(fs.ReleaseFile("/f").ok());
  EXPECT_GE(kernel.stats().verify_failures.load(), 1u);
  EXPECT_EQ(kernel.stats().corruptions_rolled_back.load(), 1u);
  EXPECT_EQ(kernel.stats().corruptions_fixed_by_libfs.load(), 0u);

  // Rollback repaired the dirent and kept the data.
  EXPECT_EQ(ReadAll(fs, "/f"), "hello");
  Result<FsckReport> fsck = RunFsck(pool);
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->Clean()) << fsck->problems.front().detail;
}

// ---------------------------------------------------------------------------
// Deadline watchdog: hung LibFS callbacks are escalated, not waited on forever
// ---------------------------------------------------------------------------

TEST(FaultSimKernelTest, HungFixCorruptionResolvedByTimeoutAndRollback) {
  NvmPool pool(kPoolPages, NvmMode::kFast);
  FormatOptions format;
  format.max_inodes = 256;
  TRIO_CHECK_OK(Format(pool, format));
  KernelConfig config;
  config.fix_timeout_ms = 25;
  KernelController kernel(pool, config);
  TRIO_CHECK_OK(kernel.Mount());

  auto latch = std::make_shared<SharedLatch>();
  auto fix_calls = std::make_shared<std::atomic<uint64_t>>(0);
  ArckFsConfig fs_config;
  fs_config.fix_corruption = [latch, fix_calls](Ino, const Status&) {
    fix_calls->fetch_add(1);
    latch->Wait();  // Hangs far past fix_timeout_ms.
    return true;
  };
  ArckFs fs(kernel, fs_config);

  WriteAll(fs, "/f", "hello");
  TRIO_CHECK_OK(fs.ReleaseFile("/f"));
  Result<Fd> fd = fs.Open("/f", OpenFlags::ReadWrite());
  ASSERT_TRUE(fd.ok());
  DirentBlock* dirent = FindRootDirent(pool, "f");
  ASSERT_NE(dirent, nullptr);
  Rng rng(TestSeed());
  pool.InjectBitFlip(dirent->reserved, sizeof(dirent->reserved), rng);
  TRIO_CHECK_OK(fs.Close(*fd));

  const auto start = std::chrono::steady_clock::now();
  Status released = fs.ReleaseFile("/f");
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(released.ok());  // Rollback resolved the corruption.
  // The kernel did not hang with the callback: it timed out and escalated.
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_EQ(fix_calls->load(), 1u);
  EXPECT_GE(kernel.stats().callback_timeouts.load(), 1u);
  EXPECT_EQ(kernel.stats().corruptions_rolled_back.load(), 1u);
  EXPECT_EQ(kernel.stats().corruptions_fixed_by_libfs.load(), 0u);
  EXPECT_EQ(ReadAll(fs, "/f"), "hello");

  DrainAbandonedCallbacks(latch);
}

TEST(FaultSimKernelTest, HungRecoveryProgramTimedOutAndRecoveryCompletes) {
  // Build an unclean image with a write-mapped file, then recover it on a kernel whose
  // only registered LibFS has a recovery program that never returns.
  NvmPool pool(kPoolPages, NvmMode::kTracking);
  FormatOptions format;
  format.max_inodes = 256;
  TRIO_CHECK_OK(Format(pool, format));
  auto kernel1 = std::make_unique<KernelController>(pool);
  TRIO_CHECK_OK(kernel1->Mount());
  auto fs1 = std::make_unique<ArckFs>(*kernel1);
  pool.StartFenceRecording();
  WriteAll(*fs1, "/done", "done-data");
  Result<Fd> keep = fs1->Open("/open", OpenFlags::CreateTrunc());
  TRIO_CHECK(keep.ok());
  TRIO_CHECK(fs1->Pwrite(*keep, "open-data", 9, 0).ok());
  pool.StopFenceRecording();
  std::vector<char> image(kPoolPages * kPageSize);
  pool.MaterializeAt(pool.RecordedFenceCount(), image.data());

  NvmPool crashed(kPoolPages, NvmMode::kFast);
  crashed.LoadImage(image.data());
  KernelConfig config;
  config.recovery_timeout_ms = 25;
  KernelController kernel2(crashed, config);
  TRIO_CHECK_OK(kernel2.Mount());
  ASSERT_TRUE(kernel2.NeedsRecovery());

  auto latch = std::make_shared<SharedLatch>();
  LibFsOptions libfs_options;
  libfs_options.callbacks.recovery = [latch] { latch->Wait(); };
  kernel2.RegisterLibFs(libfs_options);

  const auto start = std::chrono::steady_clock::now();
  Status recovered = kernel2.RunRecovery();
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_TRUE(recovered.ok()) << recovered.ToString();
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_GE(kernel2.stats().callback_timeouts.load(), 1u);
  Result<FsckReport> fsck = RunFsck(crashed);
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->Clean()) << fsck->problems.front().detail;

  DrainAbandonedCallbacks(latch);
}

TEST(FaultSimKernelTest, UnresponsiveLeaseHolderIsForciblyReleased) {
  NvmPool pool(kPoolPages, NvmMode::kFast);
  FormatOptions format;
  format.max_inodes = 256;
  TRIO_CHECK_OK(Format(pool, format));
  KernelConfig config;
  config.lease_ms = 10;
  config.revoke_grace_ms = 10;
  KernelController kernel(pool, config);
  TRIO_CHECK_OK(kernel.Mount());

  auto latch = std::make_shared<SharedLatch>();
  auto revokes = std::make_shared<std::atomic<uint64_t>>(0);
  LibFsOptions holder_options;
  holder_options.callbacks.revoke = [latch, revokes](Ino) {
    revokes->fetch_add(1);
    latch->Wait();  // Never releases voluntarily.
  };
  const LibFsId holder = kernel.RegisterLibFs(holder_options);
  Result<MapInfo> held = kernel.MapRoot(holder, /*write=*/true);
  ASSERT_TRUE(held.ok());

  const LibFsId contender = kernel.RegisterLibFs(LibFsOptions{});
  const auto start = std::chrono::steady_clock::now();
  Result<MapInfo> granted = kernel.MapRoot(contender, /*write=*/true);
  const auto elapsed = std::chrono::steady_clock::now() - start;

  // The contender was granted the write lease once the holder's lease (plus grace)
  // expired — without waiting for the hung revoke callback.
  ASSERT_TRUE(granted.ok()) << granted.status().ToString();
  EXPECT_TRUE(granted->writable);
  EXPECT_LT(elapsed, std::chrono::seconds(5));
  EXPECT_EQ(revokes->load(), 1u);
  EXPECT_GE(kernel.stats().callback_timeouts.load(), 1u);
  EXPECT_EQ(kernel.stats().forced_releases.load(), 1u);
  TRIO_CHECK_OK(kernel.UnmapFile(contender, kRootIno));

  DrainAbandonedCallbacks(latch);
}

TEST(FaultSimKernelTest, ForcedReleaseRacingLeaseReacquire) {
  // While a contender's map is mid-ForceReleaseLocked (the holder's revoke callback is
  // hung and the kernel lock is dropped around the guarded wait), the original holder
  // concurrently re-acquires the same lease. Both calls must return, nobody deadlocks,
  // and the kernel's ownership state stays consistent no matter which racer wins.
  NvmPool pool(kPoolPages, NvmMode::kFast);
  FormatOptions format;
  format.max_inodes = 256;
  TRIO_CHECK_OK(Format(pool, format));
  KernelConfig config;
  config.lease_ms = 10;
  config.revoke_grace_ms = 10;
  KernelController kernel(pool, config);
  TRIO_CHECK_OK(kernel.Mount());

  auto latch = std::make_shared<SharedLatch>();
  LibFsOptions holder_options;
  holder_options.callbacks.revoke = [latch](Ino) { latch->Wait(); };
  const LibFsId holder = kernel.RegisterLibFs(holder_options);
  ASSERT_TRUE(kernel.MapRoot(holder, /*write=*/true).ok());

  const LibFsId contender = kernel.RegisterLibFs(LibFsOptions{});
  const auto start = std::chrono::steady_clock::now();
  Result<MapInfo> contender_grant = InvalidArgument("not run");
  std::thread contending([&] {
    contender_grant = kernel.MapRoot(contender, /*write=*/true);
  });
  // Land the re-acquire inside the contender's guarded revoke wait (the kernel lock is
  // released there). Exact interleaving does not matter for the invariants below — under
  // sanizer-slowed schedules this may also land before or after the force.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Result<MapInfo> holder_regrant = kernel.MapRoot(holder, /*write=*/true);
  contending.join();
  const auto elapsed = std::chrono::steady_clock::now() - start;

  EXPECT_LT(elapsed, std::chrono::seconds(5));
  // The contender cannot be starved by the hung holder: its map must have resolved, by
  // force if necessary.
  ASSERT_TRUE(contender_grant.ok()) << contender_grant.status().ToString();
  EXPECT_TRUE(contender_grant->writable);
  // The holder's concurrent re-acquire either won a (possibly later-revoked) grant or
  // failed cleanly — it must not corrupt the writer bookkeeping.
  if (holder_regrant.ok()) {
    EXPECT_TRUE(holder_regrant->writable);
  }
  EXPECT_GE(kernel.stats().forced_releases.load(), 1u);

  // Exactly one of the racers holds the write lease now; its unmap succeeds, the loser's
  // reports no mapping. Either way the root is releasable and the image stays clean.
  const Status unmap_holder = kernel.UnmapFile(holder, kRootIno);
  const Status unmap_contender = kernel.UnmapFile(contender, kRootIno);
  EXPECT_TRUE(unmap_holder.ok() || unmap_contender.ok())
      << unmap_holder.ToString() << " / " << unmap_contender.ToString();
  Result<FsckReport> fsck = RunFsck(pool);
  ASSERT_TRUE(fsck.ok());
  EXPECT_TRUE(fsck->Clean()) << fsck->problems.front().detail;

  DrainAbandonedCallbacks(latch);
}

}  // namespace
}  // namespace trio
