// POSIX-like conformance suite, parameterized over EVERY evaluated file system: ArckFS
// (with and without delegation), FPFS, and the seven baselines. Whatever the internals,
// the same calls must yield the same observable semantics — which is also what makes the
// benchmark comparisons meaningful.

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/baselines/fs_factory.h"

namespace trio {
namespace {

class ConformanceTest : public ::testing::TestWithParam<std::string> {
 protected:
  ConformanceTest() : instance_(MakeFs(GetParam())) {}

  FsInterface& fs() { return *instance_.fs; }

  void WriteFile(const std::string& path, const std::string& data) {
    Result<Fd> fd = fs().Open(path, OpenFlags::CreateTrunc());
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    ASSERT_TRUE(fs().Pwrite(*fd, data.data(), data.size(), 0).ok());
    ASSERT_TRUE(fs().Close(*fd).ok());
  }

  std::string ReadAll(const std::string& path) {
    Result<Fd> fd = fs().Open(path, OpenFlags::ReadOnly());
    if (!fd.ok()) {
      return "<open failed>";
    }
    Result<StatInfo> info = fs().Stat(path);
    if (!info.ok()) {
      return "<stat failed>";
    }
    std::string out(info->size, '\0');
    Result<size_t> n = fs().Pread(*fd, out.data(), out.size(), 0);
    if (!n.ok()) {
      return "<read failed>";
    }
    out.resize(*n);
    (void)fs().Close(*fd);
    return out;
  }

  FsInstance instance_;
};

TEST_P(ConformanceTest, WriteReadRoundTrip) {
  WriteFile("/f", "round trip");
  EXPECT_EQ(ReadAll("/f"), "round trip");
}

TEST_P(ConformanceTest, MissingFileNotFound) {
  EXPECT_TRUE(fs().Open("/missing", OpenFlags::ReadOnly()).status().Is(
      ErrorCode::kNotFound));
  EXPECT_TRUE(fs().Stat("/missing").status().Is(ErrorCode::kNotFound));
  EXPECT_TRUE(fs().Unlink("/missing").Is(ErrorCode::kNotFound));
}

TEST_P(ConformanceTest, StatTypesAndSizes) {
  WriteFile("/file", std::string(1234, 'x'));
  ASSERT_TRUE(fs().Mkdir("/dir").ok());
  Result<StatInfo> file = fs().Stat("/file");
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(file->IsRegular());
  EXPECT_EQ(file->size, 1234u);
  Result<StatInfo> dir = fs().Stat("/dir");
  ASSERT_TRUE(dir.ok());
  EXPECT_TRUE(dir->IsDirectory());
}

TEST_P(ConformanceTest, NestedDirectories) {
  ASSERT_TRUE(fs().Mkdir("/a").ok());
  ASSERT_TRUE(fs().Mkdir("/a/b").ok());
  ASSERT_TRUE(fs().Mkdir("/a/b/c").ok());
  WriteFile("/a/b/c/f", "nested");
  EXPECT_EQ(ReadAll("/a/b/c/f"), "nested");
}

TEST_P(ConformanceTest, ReadDirContents) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  WriteFile("/d/x", "1");
  WriteFile("/d/y", "2");
  ASSERT_TRUE(fs().Mkdir("/d/z").ok());
  Result<std::vector<DirEntryInfo>> entries = fs().ReadDir("/d");
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 3u);
}

TEST_P(ConformanceTest, UnlinkAndRmdirSemantics) {
  ASSERT_TRUE(fs().Mkdir("/d").ok());
  WriteFile("/d/f", "x");
  EXPECT_TRUE(fs().Rmdir("/d").Is(ErrorCode::kNotEmpty));
  EXPECT_TRUE(fs().Unlink("/d").Is(ErrorCode::kIsDir));
  EXPECT_TRUE(fs().Rmdir("/d/f").Is(ErrorCode::kNotDir));
  ASSERT_TRUE(fs().Unlink("/d/f").ok());
  ASSERT_TRUE(fs().Rmdir("/d").ok());
  EXPECT_TRUE(fs().Stat("/d").status().Is(ErrorCode::kNotFound));
}

TEST_P(ConformanceTest, RenameBasics) {
  WriteFile("/old", "content");
  ASSERT_TRUE(fs().Rename("/old", "/new").ok());
  EXPECT_TRUE(fs().Stat("/old").status().Is(ErrorCode::kNotFound));
  EXPECT_EQ(ReadAll("/new"), "content");
}

TEST_P(ConformanceTest, RenameAcrossDirectories) {
  ASSERT_TRUE(fs().Mkdir("/p").ok());
  ASSERT_TRUE(fs().Mkdir("/q").ok());
  WriteFile("/p/f", "moved");
  ASSERT_TRUE(fs().Rename("/p/f", "/q/g").ok());
  EXPECT_EQ(ReadAll("/q/g"), "moved");
}

TEST_P(ConformanceTest, TruncateShrink) {
  WriteFile("/t", "0123456789");
  ASSERT_TRUE(fs().Truncate("/t", 4).ok());
  EXPECT_EQ(fs().Stat("/t")->size, 4u);
  EXPECT_EQ(ReadAll("/t"), "0123");
}

TEST_P(ConformanceTest, SparseFileReadsZeros) {
  Result<Fd> fd = fs().Open("/sparse", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs().Pwrite(*fd, "end", 3, 100000).ok());
  char buf[10];
  Result<size_t> n = fs().Pread(*fd, buf, 10, 50000);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(*n, 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(buf[i], 0);
  }
  ASSERT_TRUE(fs().Close(*fd).ok());
}

TEST_P(ConformanceTest, CursorSemantics) {
  Result<Fd> fd = fs().Open("/cur", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs().Write(*fd, "aaa", 3).ok());
  ASSERT_TRUE(fs().Write(*fd, "bbb", 3).ok());
  ASSERT_TRUE(fs().Seek(*fd, 3).ok());
  char buf[3];
  ASSERT_TRUE(fs().Read(*fd, buf, 3).ok());
  EXPECT_EQ(std::string(buf, 3), "bbb");
  ASSERT_TRUE(fs().Close(*fd).ok());
}

TEST_P(ConformanceTest, LargerThanOnePageIO) {
  const std::string data(3 * kPageSize + 17, 'q');
  WriteFile("/big", data);
  EXPECT_EQ(ReadAll("/big"), data);
}

TEST_P(ConformanceTest, OverwriteMiddle) {
  WriteFile("/ow", std::string(kPageSize * 2, 'a'));
  Result<Fd> fd = fs().Open("/ow", OpenFlags::ReadWrite());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fs().Pwrite(*fd, "ZZZ", 3, kPageSize - 1).ok());
  ASSERT_TRUE(fs().Close(*fd).ok());
  std::string data = ReadAll("/ow");
  EXPECT_EQ(data.substr(kPageSize - 1, 3), "ZZZ");
  EXPECT_EQ(data[kPageSize - 2], 'a');
  EXPECT_EQ(data[kPageSize + 2], 'a');
}

TEST_P(ConformanceTest, FsyncSucceedsOnOpenFd) {
  Result<Fd> fd = fs().Open("/s", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(fs().Fsync(*fd).ok());
  ASSERT_TRUE(fs().Close(*fd).ok());
}

TEST_P(ConformanceTest, ManyFilesChurn) {
  ASSERT_TRUE(fs().Mkdir("/churn").ok());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 60; ++i) {
      WriteFile("/churn/f" + std::to_string(i), std::to_string(round * 100 + i));
    }
    for (int i = 0; i < 60; i += 2) {
      ASSERT_TRUE(fs().Unlink("/churn/f" + std::to_string(i)).ok());
    }
    for (int i = 1; i < 60; i += 2) {
      EXPECT_EQ(ReadAll("/churn/f" + std::to_string(i)),
                std::to_string(round * 100 + i));
      ASSERT_TRUE(fs().Unlink("/churn/f" + std::to_string(i)).ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFileSystems, ConformanceTest,
                         ::testing::ValuesIn(AllPosixFsNames()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace trio
