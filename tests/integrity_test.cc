// §6.5 "Metadata Integrity": the eleven handcrafted attacks and the scripted corruption
// sweep. In every scenario the integrity verifier must detect the corruption and the
// kernel controller must restore the file to a consistent state, confining the damage to
// the attacker (§3.2's guarantee).

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "src/attacks/attacks.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"

namespace trio {
namespace {

class IntegrityTest : public ::testing::Test {
 protected:
  IntegrityTest() : pool_(8192) {
    FormatOptions options;
    options.max_inodes = 4096;
    TRIO_CHECK_OK(Format(pool_, options));
    kernel_ = std::make_unique<KernelController>(pool_);
    TRIO_CHECK_OK(kernel_->Mount());
    victim_ = std::make_unique<ArckFs>(*kernel_);
    attacker_ = std::make_unique<MaliciousLibFs>(*kernel_);
  }

  ~IntegrityTest() override {
    attacker_.reset();
    victim_.reset();
  }

  // Victim creates a file with content and releases it so the attacker can map it.
  void VictimCreates(const std::string& path, const std::string& content) {
    Result<Fd> fd = victim_->Open(path, OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok()) << fd.status().ToString();
    TRIO_CHECK(victim_->Pwrite(*fd, content.data(), content.size(), 0).ok());
    TRIO_CHECK_OK(victim_->Close(*fd));
    TRIO_CHECK_OK(victim_->ReleaseFile(path));
    TRIO_CHECK_OK(victim_->ReleaseFile("/"));
  }

  std::string VictimReads(const std::string& path) {
    Result<Fd> fd = victim_->Open(path, OpenFlags::ReadOnly());
    TRIO_CHECK(fd.ok()) << fd.status().ToString();
    Result<StatInfo> info = victim_->Stat(path);
    TRIO_CHECK(info.ok());
    std::string out(info->size, '\0');
    Result<size_t> n = victim_->Pread(*fd, out.data(), out.size(), 0);
    TRIO_CHECK(n.ok()) << n.status().ToString();
    out.resize(*n);
    TRIO_CHECK_OK(victim_->Close(*fd));
    return out;
  }

  NvmPool pool_;
  std::unique_ptr<KernelController> kernel_;
  std::unique_ptr<ArckFs> victim_;
  std::unique_ptr<MaliciousLibFs> attacker_;
};

TEST_F(IntegrityTest, MmuBlocksUnmappedAccess) {
  EXPECT_TRUE(attacker_->ProbeUnmappedPageFaults());
}

TEST_F(IntegrityTest, Attack1_IndexPointerHijackDetectedAndRolledBack) {
  VictimCreates("/target", "precious data");
  ASSERT_TRUE(attacker_->AttackPointIndexOutside("/target").ok());
  Status released = attacker_->ReleaseTarget("/target");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
  EXPECT_GE(kernel_->stats().corruptions_rolled_back.load(), 1u);
  // The victim sees the checkpointed (pre-attack) state.
  EXPECT_EQ(VictimReads("/target"), "precious data");
}

TEST_F(IntegrityTest, Attack2_RemoveNonEmptyDirDetected) {
  TRIO_CHECK_OK(victim_->Mkdir("/dir"));
  VictimCreates("/dir/child", "x");
  TRIO_CHECK_OK(victim_->ReleaseFile("/dir"));
  ASSERT_TRUE(attacker_->AttackRemoveNonEmptyDir("/dir").ok());
  // The corruption lives in the root directory's pages; releasing the root verifies it.
  Status released = attacker_->ReleaseTarget("/");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
  // Rollback restored the dirent: the subtree is reachable again.
  EXPECT_EQ(VictimReads("/dir/child"), "x");
}

TEST_F(IntegrityTest, Attack3_SlashInNameDetected) {
  VictimCreates("/victimfile", "safe");
  ASSERT_TRUE(attacker_->AttackSlashInName("/victimfile").ok());
  Status released = attacker_->ReleaseTarget("/victimfile");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
  EXPECT_EQ(VictimReads("/victimfile"), "safe");
}

TEST_F(IntegrityTest, Attack4_IndexCycleDetected) {
  VictimCreates("/loopy", std::string(kPageSize * 2, 'l'));
  ASSERT_TRUE(attacker_->AttackIndexCycle("/loopy").ok());
  Status released = attacker_->ReleaseTarget("/loopy");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
  EXPECT_EQ(VictimReads("/loopy"), std::string(kPageSize * 2, 'l'));
}

TEST_F(IntegrityTest, Attack5_DuplicateNameDetected) {
  TRIO_CHECK_OK(victim_->Mkdir("/dups"));
  VictimCreates("/dups/a", "1");
  VictimCreates("/dups/b", "2");
  TRIO_CHECK_OK(victim_->ReleaseFile("/dups"));
  ASSERT_TRUE(attacker_->AttackDuplicateName("/dups").ok());
  Status released = attacker_->ReleaseTarget("/dups");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
  EXPECT_EQ(VictimReads("/dups/a"), "1");
  EXPECT_EQ(VictimReads("/dups/b"), "2");
}

TEST_F(IntegrityTest, Attack6_DoubleReferenceDetected) {
  VictimCreates("/dref", std::string(100, 'd'));
  ASSERT_TRUE(attacker_->AttackDoubleReference("/dref").ok());
  Status released = attacker_->ReleaseTarget("/dref");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
  EXPECT_EQ(VictimReads("/dref"), std::string(100, 'd'));
}

TEST_F(IntegrityTest, Attack7_PermissionEscalationDetected) {
  VictimCreates("/secret", "root only");
  ASSERT_TRUE(attacker_->AttackPermissionEscalation("/secret").ok());
  Status released = attacker_->ReleaseTarget("/secret");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
  // The shadow inode (ground truth) was never affected.
  EXPECT_EQ(VictimReads("/secret"), "root only");
}

TEST_F(IntegrityTest, Attack8_SizeBeyondCapacityDetected) {
  VictimCreates("/sz", "1234");
  ASSERT_TRUE(attacker_->AttackSizeBeyondCapacity("/sz").ok());
  Status released = attacker_->ReleaseTarget("/sz");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
  EXPECT_EQ(VictimReads("/sz"), "1234");
}

TEST_F(IntegrityTest, Attack9_StealForeignPageDetected) {
  VictimCreates("/mine", std::string(kPageSize, 'm'));
  VictimCreates("/theirs", std::string(kPageSize, 't'));
  // Find a page belonging to /theirs via its stat + the kernel's ownership (the attacker
  // would learn addresses by probing; the test shortcuts that).
  Result<StatInfo> info = victim_->Stat("/theirs");
  ASSERT_TRUE(info.ok());
  PageNumber foreign = 0;
  for (PageNumber p = FileRegionStart(pool_); p < pool_.num_pages(); ++p) {
    PageState state = kernel_->StateOfPage(p);
    if (state.state == ResourceState::kOwned && state.owner == info->ino) {
      foreign = p;
      break;
    }
  }
  ASSERT_NE(foreign, 0u);
  ASSERT_TRUE(attacker_->AttackStealForeignPage("/mine", foreign).ok());
  Status released = attacker_->ReleaseTarget("/mine");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
  EXPECT_EQ(VictimReads("/theirs"), std::string(kPageSize, 't'));
}

TEST_F(IntegrityTest, Attack10_InvalidTypeDetected) {
  VictimCreates("/typ", "t");
  ASSERT_TRUE(attacker_->AttackInvalidType("/typ").ok());
  Status released = attacker_->ReleaseTarget("/typ");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
  EXPECT_EQ(VictimReads("/typ"), "t");
}

TEST_F(IntegrityTest, Attack11_ReservedBytePayloadDetected) {
  VictimCreates("/resv", "r");
  ASSERT_TRUE(attacker_->AttackReservedBytes("/resv").ok());
  Status released = attacker_->ReleaseTarget("/resv");
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
  EXPECT_EQ(VictimReads("/resv"), "r");
}

TEST_F(IntegrityTest, VictimAccessAloneTriggersDetection) {
  // No explicit release: the victim's map request revokes the attacker, and the kernel
  // verifies on that path too.
  VictimCreates("/auto", "clean");
  ASSERT_TRUE(attacker_->AttackSizeBeyondCapacity("/auto").ok());
  const uint64_t failures_before = kernel_->stats().verify_failures.load();
  EXPECT_EQ(VictimReads("/auto"), "clean");
  EXPECT_GT(kernel_->stats().verify_failures.load(), failures_before);
}

TEST_F(IntegrityTest, FixCallbackGetsAChance) {
  // A LibFS that repairs its own corruption passes re-verification; no rollback happens.
  NvmPool local_pool(4096);
  FormatOptions options;
  options.max_inodes = 1024;
  TRIO_CHECK_OK(Format(local_pool, options));
  // The default 10ms fix deadline assumes an idle machine; under a loaded CI box the
  // watchdog thread may not even be scheduled before it expires, abandoning a perfectly
  // cooperative callback. This test is about the fix path, not the deadline — pin a
  // load-tolerant budget (the deadline itself is covered by the hung-callback tests).
  KernelConfig kernel_config;
  kernel_config.fix_timeout_ms = 2000;
  KernelController kernel(local_pool, kernel_config);
  TRIO_CHECK_OK(kernel.Mount());
  {
    uint64_t* corrupted_size = nullptr;
    ArckFsConfig config;
    config.fix_corruption = [&](Ino, const Status&) {
      if (corrupted_size != nullptr) {
        local_pool.CommitStore64(corrupted_size, 4);  // Restore the honest size.
        return true;
      }
      return false;
    };
    MaliciousLibFs fixer(kernel, config);
    Result<Fd> fd = fixer.Open("/f", OpenFlags::CreateTrunc());
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(fixer.Pwrite(*fd, "abcd", 4, 0).ok());
    ASSERT_TRUE(fixer.Close(*fd).ok());
    Result<DirentBlock*> dirent = fixer.MapTarget("/f");
    ASSERT_TRUE(dirent.ok());
    corrupted_size = &(*dirent)->size;
    ASSERT_TRUE(fixer.AttackSizeBeyondCapacity("/f").ok());
    Status released = fixer.ReleaseTarget("/f");
    EXPECT_TRUE(released.ok()) << released.ToString();
    EXPECT_GE(kernel.stats().corruptions_fixed_by_libfs.load(), 1u);
    EXPECT_EQ(kernel.stats().corruptions_rolled_back.load(), 0u);
  }
  TRIO_CHECK_OK(kernel.Unmount());
}

// ---- Scripted corruption sweep (the "134 corruption scenarios" of §6.5) ----

class CorruptionSweepTest : public IntegrityTest,
                            public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(CorruptionSweepTest, DetectedAndRecovered) {
  const size_t scenario = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  const std::string name = CorruptionScenarioName(scenario);

  // dir-targeted scripts corrupt a directory's metadata; everything else hits a file.
  const bool dir_target = name == "dir_size_nonzero" || name == "dir_index_cycle";
  std::string path;
  if (dir_target) {
    TRIO_CHECK_OK(victim_->Mkdir("/swept"));
    VictimCreates("/swept/inner", "i");
    TRIO_CHECK_OK(victim_->ReleaseFile("/swept"));
    path = "/swept";
  } else {
    path = "/sweep_target";
    VictimCreates(path, std::string(2 * kPageSize, 's'));
  }

  Status applied = ApplyScriptedCorruption(*attacker_, path, scenario, seed);
  ASSERT_TRUE(applied.ok()) << name << ": " << applied.ToString();

  Status released = attacker_->ReleaseTarget(path);
  EXPECT_TRUE(released.Is(ErrorCode::kCorrupted))
      << name << " seed " << seed << ": " << released.ToString();

  // The kernel restored a consistent state: the victim can still use the file system.
  if (dir_target) {
    EXPECT_EQ(VictimReads("/swept/inner"), "i");
  } else {
    EXPECT_EQ(VictimReads(path), std::string(2 * kPageSize, 's'));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllScriptsManySeeds, CorruptionSweepTest,
    ::testing::Combine(::testing::Range(0, static_cast<int>(CorruptionScenarioCount())),
                       ::testing::Range(0, 8)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return CorruptionScenarioName(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace trio
