// Multi-tenant schedule exploration: two LibFS instances race on a shared file under
// seeded PCT-style interleavings, with a crash materialized at every fence of every
// schedule. The acceptance gate for the explorer is a planted cross-tenant bug: a
// test-only kernel flag (canary_leak_on_contended_transfer) double-frees a page during
// contended ownership transfers. With the flag on, the explorer must find a failing
// interleaving, shrink it, and the shrunken schedule must replay to the same verdict
// from nothing but its bit-vector; the no-preemption baselines stay clean (the bug needs
// contention). With the flag off, a full sweep passes clean.

#include "src/sim/schedule_explorer.h"

#include <gtest/gtest.h>

#include <string>

#include "src/verifier/fsck.h"
#include "tests/test_seed.h"

namespace trio {
namespace {

// Tenant A: creates /shared and holds the write lease across two steps, releasing only
// in its last step. The release step matters: in the all-A-then-B baseline, tenant B
// then reads /shared WITHOUT revoking anybody, so the baseline has zero contention.
TenantScript TenantA() {
  return {
      [](ArckFs& fs) {
        Result<Fd> fd = fs.Open("/shared", OpenFlags::CreateTrunc());
        if (!fd.ok()) {
          return;
        }
        const std::string data(2 * kPageSize, 'a');
        (void)fs.Pwrite(*fd, data.data(), data.size(), 0);
        (void)fs.Close(*fd);  // Lease retained: close does not release.
      },
      [](ArckFs& fs) {
        Result<Fd> fd = fs.Open("/shared", OpenFlags::ReadWrite());
        if (!fd.ok()) {
          return;
        }
        const std::string more(kPageSize, 'A');
        (void)fs.Pwrite(*fd, more.data(), more.size(), 2 * kPageSize);
        (void)fs.Close(*fd);
      },
      [](ArckFs& fs) {
        (void)fs.ReleaseFile("/shared");
        (void)fs.ReleaseFile("/");
      },
  };
}

// Tenant B: reads /shared (revoking A's write lease when interleaved mid-hold — the
// contended transfer the canary keys on), then creates its own file. With page_batch=1
// every allocation goes to the kernel, so a page the canary leaked onto the free list is
// handed straight to /b_private — turning the leak into a durable cross-file double
// reference that fsck flags as a double claim.
TenantScript TenantB() {
  return {
      [](ArckFs& fs) {
        Result<Fd> fd = fs.Open("/shared", OpenFlags::ReadOnly());
        if (!fd.ok()) {
          return;  // Interleavings where /shared does not exist yet are fine.
        }
        char buf[64];
        (void)fs.Pread(*fd, buf, sizeof(buf), 0);
        (void)fs.Close(*fd);
        (void)fs.ReleaseFile("/shared");
      },
      [](ArckFs& fs) {
        Result<Fd> fd = fs.Open("/b_private", OpenFlags::CreateTrunc());
        if (!fd.ok()) {
          return;
        }
        const std::string data(kPageSize, 'b');
        (void)fs.Pwrite(*fd, data.data(), data.size(), 0);
        (void)fs.Close(*fd);
      },
      [](ArckFs& fs) {
        (void)fs.ReleaseFile("/b_private");
        (void)fs.ReleaseFile("/");
      },
  };
}

ScheduleExplorerOptions BaseOptions() {
  ScheduleExplorerOptions options;
  options.pool_pages = 2048;
  options.max_inodes = 256;
  options.seed = TestSeed();
  options.schedules = 12;
  options.max_preemptions = 4;
  options.max_crash_points = 6;  // Sampled sweep keeps the suite fast; live fsck is full.
  options.tenant_b.page_batch = 1;
  return options;
}

TEST(ScheduleExplorerTest, GeneratorIsDeterministicAndBounded) {
  ScheduleExplorer explorer(BaseOptions());
  ScheduleExplorer twin(BaseOptions());
  for (size_t i = 0; i < 8; ++i) {
    const Schedule s = explorer.GenerateSchedule(i, 3, 3);
    EXPECT_EQ(s, twin.GenerateSchedule(i, 3, 3)) << "schedule " << i;
    EXPECT_EQ(s.size(), 6u);
    size_t alternations = 0;
    for (size_t j = 1; j < s.size(); ++j) {
      alternations += s[j] != s[j - 1] ? 1 : 0;
    }
    EXPECT_LE(alternations, BaseOptions().max_preemptions + 1);
  }
}

TEST(ScheduleExplorerTest, CleanKernelSweepsClean) {
  ScheduleExplorer explorer(BaseOptions());
  Result<ScheduleExplorerReport> report = explorer.Explore(TenantA(), TenantB());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->Clean())
      << report->failures.front().what << " (fence " << report->failures.front().fence
      << ")";
  // Two baselines + the random schedules, each crash-swept.
  EXPECT_EQ(report->schedules_explored, 2 + BaseOptions().schedules);
  EXPECT_GT(explorer.stats().crash_points_explored.load(), 0u);
  EXPECT_GT(explorer.stats().fsck_runs.load(), 0u);
}

TEST(ScheduleExplorerTest, PlantedCanaryFoundMinimizedAndReplayable) {
  ScheduleExplorerOptions options = BaseOptions();
  options.kernel_config.canary_leak_on_contended_transfer = true;
  options.schedules = 24;  // Enough seeded interleavings to hit a contended transfer.
  ScheduleExplorer explorer(options);

  Result<ScheduleExplorerReport> report = explorer.Explore(TenantA(), TenantB());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_FALSE(report->Clean()) << "planted cross-tenant leak was not found";
  const ScheduleFailure& failure = report->failures.front();

  // The bug needs contention, so no FULL baseline fails — but the minimized repro may
  // legitimately LOOK sequential (tail truncation typically shrinks to "A holds the
  // lease, then B runs": e.g. AABB, where A's release step was cut). Assert it is not
  // one of the complete baselines rather than counting preemptions.
  EXPECT_FALSE(failure.baseline) << failure.what;
  EXPECT_FALSE(failure.what.empty());
  TenantScript a = TenantA();
  TenantScript b = TenantB();
  Schedule all_a_then_b(a.size(), 0);
  all_a_then_b.insert(all_a_then_b.end(), b.size(), 1);
  Schedule all_b_then_a(b.size(), 1);
  all_b_then_a.insert(all_b_then_a.end(), a.size(), 0);
  EXPECT_NE(failure.schedule, all_a_then_b);
  EXPECT_NE(failure.schedule, all_b_then_a);

  // Replayable from the bit-vector alone: a FRESH explorer with the same options
  // reproduces the failure verdict.
  ScheduleExplorer replayer(options);
  const ScheduleFailure replayed =
      replayer.Replay(TenantA(), TenantB(), failure.schedule);
  EXPECT_NE(replayed.fence, SIZE_MAX - 1) << "minimized schedule no longer fails";

  // Both zero-preemption baselines stay clean with the canary armed: the flag is
  // invisible without cross-tenant contention.
  EXPECT_EQ(replayer.Replay(a, b, all_a_then_b).fence, SIZE_MAX - 1);
  EXPECT_EQ(replayer.Replay(a, b, all_b_then_a).fence, SIZE_MAX - 1);
}

}  // namespace
}  // namespace trio
