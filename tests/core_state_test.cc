// Unit tests for the core-state format and the bounds-checked walkers.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/core_state.h"
#include "src/core/format.h"
#include "src/nvm/nvm.h"

namespace trio {
namespace {

class CoreStateTest : public ::testing::Test {
 protected:
  CoreStateTest() : pool_(256) {
    FormatOptions options;
    options.max_inodes = 1024;
    TRIO_CHECK_OK(Format(pool_, options));
  }

  // Hand-builds an index chain with the given data pages (all in the file region).
  PageNumber BuildChain(const std::vector<std::vector<PageNumber>>& per_index_page) {
    PageNumber first = 0;
    IndexPage* prev = nullptr;
    PageNumber next_free = FileRegionStart(pool_) + 50;  // Clear of the root's index page.
    for (const auto& entries : per_index_page) {
      const PageNumber page = next_free++;
      auto* index = reinterpret_cast<IndexPage*>(pool_.PageAddress(page));
      std::memset(index, 0, kPageSize);
      for (size_t i = 0; i < entries.size(); ++i) {
        index->entries[i] = entries[i];
      }
      if (prev != nullptr) {
        prev->next = page;
      } else {
        first = page;
      }
      prev = index;
    }
    return first;
  }

  NvmPool pool_;
};

TEST_F(CoreStateTest, FormatWritesValidSuperblock) {
  EXPECT_TRUE(CheckSuperblock(pool_).ok());
  const Superblock* sb = SuperblockOf(pool_);
  EXPECT_EQ(sb->magic, kSuperMagic);
  EXPECT_EQ(sb->root.ino, kRootIno);
  EXPECT_TRUE(sb->root.IsDirectory());
  EXPECT_EQ(sb->root.Name(), "/");
  EXPECT_EQ(sb->root.first_index_page, sb->file_region_page);
  EXPECT_EQ(sb->clean_shutdown, 1u);
}

TEST_F(CoreStateTest, RootShadowInodeInstalled) {
  ShadowInode* shadow = ShadowInodeOf(pool_, kRootIno);
  ASSERT_NE(shadow, nullptr);
  EXPECT_TRUE(shadow->Exists());
  EXPECT_EQ(shadow->mode, kModeDirectory | 0755u);
}

TEST_F(CoreStateTest, ShadowInodeOutOfRange) {
  EXPECT_EQ(ShadowInodeOf(pool_, kInvalidIno), nullptr);
  EXPECT_EQ(ShadowInodeOf(pool_, 1 << 20), nullptr);
}

TEST_F(CoreStateTest, BadMagicRejected) {
  SuperblockOf(pool_)->magic = 0;
  EXPECT_TRUE(CheckSuperblock(pool_).Is(ErrorCode::kCorrupted));
}

TEST_F(CoreStateTest, DirentBlockLayout) {
  EXPECT_EQ(sizeof(DirentBlock), kDirentBlockSize);
  EXPECT_EQ(sizeof(IndexPage), kPageSize);
  EXPECT_EQ(sizeof(DirDataPage), kPageSize);
  DirentBlock d{};
  EXPECT_TRUE(d.IsFree());
  d.ino = 2;
  d.mode = kModeRegular | 0644;
  d.SetName("hello.txt");
  EXPECT_TRUE(d.IsRegular());
  EXPECT_FALSE(d.IsDirectory());
  EXPECT_EQ(d.Name(), "hello.txt");
}

TEST_F(CoreStateTest, ValidFileNameRules) {
  EXPECT_TRUE(ValidFileName("a"));
  EXPECT_TRUE(ValidFileName("file_99.dat"));
  EXPECT_FALSE(ValidFileName(""));
  EXPECT_FALSE(ValidFileName("."));
  EXPECT_FALSE(ValidFileName(".."));
  EXPECT_FALSE(ValidFileName("a/b"));
  EXPECT_FALSE(ValidFileName(std::string(kMaxNameLen, 'x')));
  EXPECT_FALSE(ValidFileName(std::string_view("a\0b", 3)));
}

TEST_F(CoreStateTest, WalkEmptyChain) {
  int visits = 0;
  EXPECT_TRUE(ForEachIndexPage(pool_, 0, [&](PageNumber) -> Status {
                ++visits;
                return OkStatus();
              }).ok());
  EXPECT_EQ(visits, 0);
}

TEST_F(CoreStateTest, WalkChainVisitsDataPagesWithIndices) {
  const PageNumber base = FileRegionStart(pool_) + 100;
  PageNumber first = BuildChain({{base, 0, base + 1}, {base + 2}});
  std::vector<std::pair<uint64_t, PageNumber>> seen;
  EXPECT_TRUE(ForEachDataPage(pool_, first, [&](uint64_t idx, PageNumber p) -> Status {
                seen.push_back({idx, p});
                return OkStatus();
              }).ok());
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], (std::pair<uint64_t, PageNumber>{0, base}));
  EXPECT_EQ(seen[1], (std::pair<uint64_t, PageNumber>{2, base + 1}));  // Hole at index 1.
  EXPECT_EQ(seen[2], (std::pair<uint64_t, PageNumber>{kIndexEntriesPerPage, base + 2}));
}

TEST_F(CoreStateTest, WalkDetectsCycle) {
  PageNumber first = BuildChain({{}, {}});
  // Point the second index page back at the first.
  auto* second = reinterpret_cast<IndexPage*>(
      pool_.PageAddress(reinterpret_cast<IndexPage*>(pool_.PageAddress(first))->next));
  second->next = first;
  Status status = ForEachIndexPage(pool_, first, [](PageNumber) { return OkStatus(); });
  EXPECT_TRUE(status.Is(ErrorCode::kCorrupted));
}

TEST_F(CoreStateTest, WalkRejectsOutOfRangeIndexPage) {
  Status status =
      ForEachIndexPage(pool_, pool_.num_pages() + 5, [](PageNumber) { return OkStatus(); });
  EXPECT_TRUE(status.Is(ErrorCode::kCorrupted));
}

TEST_F(CoreStateTest, WalkRejectsKernelRegionDataPage) {
  // An entry pointing into the shadow-inode table must be rejected.
  PageNumber first = BuildChain({{1}});
  Status status = ForEachDataPage(pool_, first, [](uint64_t, PageNumber) {
    return OkStatus();
  });
  EXPECT_TRUE(status.Is(ErrorCode::kCorrupted));
}

TEST_F(CoreStateTest, ForEachDirentSkipsFreeSlots) {
  const PageNumber data = FileRegionStart(pool_) + 120;
  auto* page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(data));
  std::memset(page, 0, kPageSize);
  page->slots[3].ino = 7;
  page->slots[3].mode = kModeRegular | 0644;
  page->slots[3].SetName("x");
  page->slots[9].ino = 8;
  page->slots[9].mode = kModeDirectory | 0755;
  page->slots[9].SetName("y");
  PageNumber first = BuildChain({{data}});

  std::vector<Ino> inos;
  EXPECT_TRUE(ForEachDirent(pool_, first, [&](DirentBlock* d, PageNumber, size_t) -> Status {
                inos.push_back(d->ino);
                return OkStatus();
              }).ok());
  EXPECT_EQ(inos, (std::vector<Ino>{7, 8}));
  Result<uint64_t> count = CountDirents(pool_, first);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(*count, 2u);
}

TEST_F(CoreStateTest, LookupDataPageFindsAndMisses) {
  const PageNumber base = FileRegionStart(pool_) + 130;
  PageNumber first = BuildChain({{base, 0, base + 1}});
  Result<PageNumber> hit = LookupDataPage(pool_, first, 2);
  ASSERT_TRUE(hit.ok());
  EXPECT_EQ(*hit, base + 1);
  EXPECT_TRUE(LookupDataPage(pool_, first, 1).status().Is(ErrorCode::kNotFound));
  EXPECT_TRUE(LookupDataPage(pool_, first, 9999).status().Is(ErrorCode::kNotFound));
}

}  // namespace
}  // namespace trio
