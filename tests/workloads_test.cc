// Tests for the workload generators: each must prepare and run on ArckFS and on a
// representative baseline, and exercise the operations it claims to.

#include <gtest/gtest.h>

#include "src/baselines/fs_factory.h"
#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "src/libfs/op_ring.h"
#include "src/workloads/workloads.h"

namespace trio {
namespace {

class WorkloadsTest : public ::testing::TestWithParam<std::string> {
 protected:
  WorkloadsTest() : instance_(MakeFs(GetParam())) {}
  FsInterface& fs() { return *instance_.fs; }
  FsInstance instance_;
};

TEST_P(WorkloadsTest, FioReadAndWrite) {
  for (bool is_read : {true, false}) {
    FioConfig config;
    config.file_size = 1 << 20;
    config.block_size = 4096;
    config.is_read = is_read;
    config.random = true;
    FioWorkload fio(fs(), config);
    ASSERT_TRUE(fio.Prepare(2).ok());
    for (int t = 0; t < 2; ++t) {
      Result<WorkloadStats> stats = fio.Run(t, 100);
      ASSERT_TRUE(stats.ok()) << stats.status().ToString();
      EXPECT_EQ(stats->ops, 100u);
      EXPECT_EQ(is_read ? stats->bytes_read : stats->bytes_written, 100u * 4096);
    }
  }
}

TEST_P(WorkloadsTest, FxMarkAllBenchmarksRun) {
  for (FxMarkBench bench :
       {FxMarkBench::kDWTL, FxMarkBench::kMRPL, FxMarkBench::kMRPM, FxMarkBench::kMRPH,
        FxMarkBench::kMRDL, FxMarkBench::kMRDM, FxMarkBench::kMWCL, FxMarkBench::kMWCM,
        FxMarkBench::kMWUL, FxMarkBench::kMWUM, FxMarkBench::kMWRL, FxMarkBench::kMWRM,
        FxMarkBench::kDRBL, FxMarkBench::kDRBM}) {
    FsInstance fresh = MakeFs(GetParam());
    FxMarkWorkload workload(*fresh.fs, bench);
    ASSERT_TRUE(workload.Prepare(2).ok()) << FxMarkBenchName(bench);
    for (int t = 0; t < 2; ++t) {
      for (uint64_t i = 0; i < 20; ++i) {
        Status status = workload.Op(t, i);
        ASSERT_TRUE(status.ok())
            << FxMarkBenchName(bench) << " t" << t << " i" << i << ": "
            << status.ToString();
      }
    }
  }
}

TEST_P(WorkloadsTest, FilebenchPersonalitiesRun) {
  for (FilebenchPersonality personality :
       {FilebenchPersonality::kFileserver, FilebenchPersonality::kWebserver,
        FilebenchPersonality::kWebproxy, FilebenchPersonality::kVarmail}) {
    FsInstance fresh = MakeFs(GetParam());
    FilebenchConfig config;
    config.personality = personality;
    config.scale = 0.002;
    FilebenchWorkload workload(*fresh.fs, config);
    ASSERT_TRUE(workload.Prepare(2).ok()) << FilebenchName(personality);
    for (int t = 0; t < 2; ++t) {
      for (uint64_t i = 0; i < 5; ++i) {
        Result<WorkloadStats> stats = workload.Op(t, i);
        ASSERT_TRUE(stats.ok())
            << FilebenchName(personality) << ": " << stats.status().ToString();
        EXPECT_GT(stats->ops, 0u);
      }
    }
  }
}

TEST_P(WorkloadsTest, VarmailDeepDirectoryVariant) {
  FilebenchConfig config;
  config.personality = FilebenchPersonality::kVarmail;
  config.scale = 0.001;
  config.dir_depth = 20;  // The FPFS experiment (§6.6).
  FilebenchWorkload workload(fs(), config);
  ASSERT_TRUE(workload.Prepare(1).ok());
  Result<WorkloadStats> stats = workload.Op(0, 0);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
}

INSTANTIATE_TEST_SUITE_P(Systems, WorkloadsTest,
                         ::testing::Values("ArckFS", "NOVA", "FPFS"));

// S1: fio writes routed through the op ring. The burst path must produce the same
// stats as the synchronous path, actually go through the ring (engine counters move),
// and leave bytes readable afterwards.
TEST(FioRingTest, WritesRouteThroughOpRingBursts) {
  NvmPool pool(4096, NvmMode::kFast);
  ASSERT_TRUE(Format(pool, FormatOptions{}).ok());
  KernelController kernel(pool);
  ASSERT_TRUE(kernel.Mount().ok());
  ArckFsConfig fs_config;
  fs_config.ring.enabled = true;
  fs_config.ring.depth = 16;
  ArckFs fs(kernel, fs_config);
  ASSERT_NE(fs.ring_engine(), nullptr);

  FioConfig config;
  config.file_size = 64 * 4096;
  config.block_size = 4096;
  config.is_read = false;
  config.random = true;
  config.use_ring = true;
  config.ring_burst = 8;
  config.ring = fs.ring_engine();
  FioWorkload fio(fs, config);
  ASSERT_TRUE(fio.Prepare(1).ok());

  const uint64_t submitted_before = fs.ring_engine()->stats().submitted.load();
  Result<WorkloadStats> stats = fio.Run(0, 100);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->ops, 100u);
  EXPECT_EQ(stats->bytes_written, 100u * 4096);
  EXPECT_GE(fs.ring_engine()->stats().submitted.load() - submitted_before, 100u);

  // Reads ignore use_ring (no ring read op) and still see the written file.
  config.is_read = true;
  FioWorkload reader(fs, config);
  Result<WorkloadStats> read_stats = reader.Run(0, 10);
  ASSERT_TRUE(read_stats.ok()) << read_stats.status().ToString();
  EXPECT_EQ(read_stats->bytes_read, 10u * 4096);

  // A misconfigured ring path fails loudly instead of silently running synchronous.
  config.is_read = false;
  config.ring = nullptr;
  FioWorkload broken(fs, config);
  Result<WorkloadStats> bad = broken.Run(0, 1);
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), ErrorCode::kInvalidArgument);
}

TEST(FxMarkMeta, NamesAndSharedness) {
  EXPECT_STREQ(FxMarkBenchName(FxMarkBench::kMWCM), "MWCM");
  EXPECT_TRUE(FxMarkShared(FxMarkBench::kMWCM));
  EXPECT_FALSE(FxMarkShared(FxMarkBench::kMWCL));
  EXPECT_TRUE(FxMarkShared(FxMarkBench::kMRPH));
  EXPECT_FALSE(FxMarkShared(FxMarkBench::kDWTL));
}

TEST(FilebenchConfigTest, Table4Parameters) {
  FilebenchConfig config;
  config.scale = 1.0;
  config.personality = FilebenchPersonality::kFileserver;
  EXPECT_EQ(config.FileCount(), 10000);
  EXPECT_EQ(config.WriteIoSize(), 512u << 10);
  config.personality = FilebenchPersonality::kVarmail;
  EXPECT_EQ(config.FileCount(), 100000);
  EXPECT_EQ(config.AvgFileSize(), 16u << 10);
}

}  // namespace
}  // namespace trio
