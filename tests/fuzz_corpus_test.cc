// Verify-and-quarantine hardening against the metadata-fuzz corpus. Every corruption
// scenario in src/attacks must end in exactly one of two outcomes — repaired (LibFS fix
// callback) or quarantined behind a structured VerifyError — and the verifier itself must
// stay bounded: cooperative deadline enforcement and bounded retry of transient media
// faults. No corpus entry may crash, hang, or leave the image dirty.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "src/attacks/attacks.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "src/verifier/fsck.h"
#include "src/verifier/verify_error.h"
#include "tests/test_seed.h"

namespace trio {
namespace {

class FuzzCorpusTest : public ::testing::Test,
                       public ::testing::WithParamInterface<std::tuple<int, int>> {
 protected:
  FuzzCorpusTest() : pool_(8192) {
    FormatOptions options;
    options.max_inodes = 4096;
    TRIO_CHECK_OK(Format(pool_, options));
    KernelConfig config;
    config.fix_timeout_ms = 500;  // Generous: sanitizer builds run the guard slowly.
    kernel_ = std::make_unique<KernelController>(pool_, config);
    TRIO_CHECK_OK(kernel_->Mount());
    victim_ = std::make_unique<ArckFs>(*kernel_);
    attacker_ = std::make_unique<MaliciousLibFs>(*kernel_);
  }

  ~FuzzCorpusTest() override {
    attacker_.reset();
    victim_.reset();
  }

  // Creates + releases a file and returns its inode number.
  Ino VictimCreates(const std::string& path, const std::string& content) {
    Result<Fd> fd = victim_->Open(path, OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok()) << fd.status().ToString();
    TRIO_CHECK(victim_->Pwrite(*fd, content.data(), content.size(), 0).ok());
    TRIO_CHECK_OK(victim_->Close(*fd));
    Result<StatInfo> info = victim_->Stat(path);
    TRIO_CHECK(info.ok());
    TRIO_CHECK_OK(victim_->ReleaseFile(path));
    TRIO_CHECK_OK(victim_->ReleaseFile("/"));
    return info->ino;
  }

  std::string VictimReads(const std::string& path) {
    Result<Fd> fd = victim_->Open(path, OpenFlags::ReadOnly());
    TRIO_CHECK(fd.ok()) << fd.status().ToString();
    Result<StatInfo> info = victim_->Stat(path);
    TRIO_CHECK(info.ok());
    std::string out(info->size, '\0');
    Result<size_t> n = victim_->Pread(*fd, out.data(), out.size(), 0);
    TRIO_CHECK(n.ok()) << n.status().ToString();
    out.resize(*n);
    TRIO_CHECK_OK(victim_->Close(*fd));
    return out;
  }

  NvmPool pool_;
  std::unique_ptr<KernelController> kernel_;
  std::unique_ptr<ArckFs> victim_;
  std::unique_ptr<MaliciousLibFs> attacker_;
};

TEST_P(FuzzCorpusTest, RepairedOrQuarantinedWithStructuredError) {
  const size_t scenario = std::get<0>(GetParam());
  const uint64_t seed = TestSeed() + std::get<1>(GetParam());
  const std::string name = CorruptionScenarioName(scenario);

  const bool dir_target = name == "dir_size_nonzero" || name == "dir_index_cycle";
  std::string path;
  Ino target_ino;
  if (dir_target) {
    TRIO_CHECK_OK(victim_->Mkdir("/swept"));
    VictimCreates("/swept/inner", "i");
    Result<StatInfo> info = victim_->Stat("/swept");
    TRIO_CHECK(info.ok());
    target_ino = info->ino;
    TRIO_CHECK_OK(victim_->ReleaseFile("/swept"));
    path = "/swept";
  } else {
    path = "/fuzz_target";
    target_ino = VictimCreates(path, std::string(2 * kPageSize, 'z'));
  }

  Status applied = ApplyScriptedCorruption(*attacker_, path, scenario, seed);
  ASSERT_TRUE(applied.ok()) << name << ": " << applied.ToString();

  // The release must return (watchdog-bounded), fail, and carry a parseable taxonomy
  // entry — kUnclassified is the parse-failure sentinel, never a verifier verdict.
  Status released = attacker_->ReleaseTarget(path);
  ASSERT_FALSE(released.ok()) << name << " seed " << seed;
  EXPECT_TRUE(VerifyError::IsStructured(released))
      << name << " seed " << seed << ": " << released.ToString();
  const VerifyError error = VerifyError::FromStatus(released);
  EXPECT_NE(error.cls, VerifyErrorClass::kUnclassified) << released.ToString();
  EXPECT_FALSE(error.invariant.empty()) << released.ToString();

  // Quarantined: the condemned images are impounded under the same structured error, and
  // the offender was notified.
  EXPECT_GE(kernel_->stats().files_quarantined.load(), 1u) << name;
  EXPECT_GE(kernel_->QuarantineCount(), 1u);
  Status impounded = kernel_->QuarantineErrorOf(target_ino);
  EXPECT_FALSE(impounded.Is(ErrorCode::kNotFound)) << name << ": " << impounded.ToString();
  EXPECT_TRUE(VerifyError::IsStructured(impounded)) << impounded.ToString();
  const auto notices = attacker_->QuarantineNotices();
  ASSERT_GE(notices.size(), 1u) << name;
  EXPECT_EQ(notices.front().first, target_ino);

  // Repaired for the victim: rollback restored the checkpointed state.
  if (dir_target) {
    EXPECT_EQ(VictimReads("/swept/inner"), "i");
  } else {
    EXPECT_EQ(VictimReads(path), std::string(2 * kPageSize, 'z'));
  }

  // And the on-NVM image is globally consistent again.
  (void)victim_->ReleaseFile(dir_target ? "/swept/inner" : path);
  if (dir_target) {
    (void)victim_->ReleaseFile("/swept");
  }
  (void)victim_->ReleaseFile("/");
  Result<FsckReport> fsck = RunFsck(pool_);
  ASSERT_TRUE(fsck.ok()) << fsck.status().ToString();
  EXPECT_TRUE(fsck->Clean()) << name << ": " << fsck->problems.front().detail;
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, FuzzCorpusTest,
    ::testing::Combine(::testing::Range(0, static_cast<int>(CorruptionScenarioCount())),
                       ::testing::Range(0, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return CorruptionScenarioName(std::get<0>(info.param)) + "_v" +
             std::to_string(std::get<1>(info.param));
    });

// ---- Bounded verification: cooperative deadline ----

// Builds a released (kernel-owned) file and hands back a VerifyRequest for it. The
// request's writer can stay kNoLibFs: for an owned file the verifier takes the
// "existing" paths, which never consult the writer.
class VerifierBoundsTest : public ::testing::Test {
 protected:
  VerifierBoundsTest() : pool_(4096) {
    FormatOptions options;
    options.max_inodes = 1024;
    TRIO_CHECK_OK(Format(pool_, options));
  }

  void SetUpFile(KernelController& kernel, MaliciousLibFs& fs) {
    Result<Fd> fd = fs.Open("/bounded", OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok());
    const std::string content(2 * kPageSize, 'b');
    TRIO_CHECK(fs.Pwrite(*fd, content.data(), content.size(), 0).ok());
    TRIO_CHECK_OK(fs.Close(*fd));
    Result<StatInfo> info = fs.Stat("/bounded");
    TRIO_CHECK(info.ok());
    ino_ = info->ino;
    Result<DirentBlock*> dirent = fs.MapTarget("/bounded");
    TRIO_CHECK(dirent.ok());
    dirent_ = *dirent;  // Stays valid after release: the dirent lives in the root's pages.
    TRIO_CHECK_OK(fs.ReleaseTarget("/bounded"));
    TRIO_CHECK_OK(fs.ReleaseTarget("/"));
  }

  VerifyRequest RequestFor() const {
    VerifyRequest request;
    request.ino = ino_;
    request.dirent = dirent_;
    return request;
  }

  NvmPool pool_;
  Ino ino_ = kInvalidIno;
  const DirentBlock* dirent_ = nullptr;
};

TEST_F(VerifierBoundsTest, DeadlineOverrunReportsStructuredTimeout) {
  FakeClock clock;
  KernelController kernel(pool_, {}, &clock);
  TRIO_CHECK_OK(kernel.Mount());
  {
    MaliciousLibFs fs(kernel);
    SetUpFile(kernel, fs);

    IntegrityVerifier verifier(pool_, kernel, kernel, &clock);
    VerifyRequest request = RequestFor();
    request.deadline_ns = clock.NowNs();
    clock.AdvanceMs(1);  // Already past the deadline when the first walk check runs.

    Result<VerifyReport> result = verifier.Verify(request);
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().Is(ErrorCode::kTimeout)) << result.status().ToString();
    const VerifyError error = VerifyError::FromStatus(result.status());
    EXPECT_EQ(error.cls, VerifyErrorClass::kDeadline) << result.status().ToString();
    EXPECT_GE(verifier.stats().deadline_exceeded.load(), 1u);

    // Unbounded (deadline_ns = 0) still verifies the same file fine.
    EXPECT_TRUE(verifier.Verify(RequestFor()).ok());
  }
  TRIO_CHECK_OK(kernel.Unmount());
}

// ---- Bounded verification: transient media faults are retried, persistent ones
// surface as kIo after the retry budget ----

TEST_F(VerifierBoundsTest, TransientMediaFaultAbsorbedByRetry) {
  KernelController kernel(pool_);
  TRIO_CHECK_OK(kernel.Mount());
  {
    MaliciousLibFs fs(kernel);
    SetUpFile(kernel, fs);

    IntegrityVerifier verifier(pool_, kernel, kernel);
    FaultInjector injector(TestSeed());
    injector.Arm(kFaultVerifierMediaRead, FaultPolicy::Once());
    verifier.set_fault_injector(&injector);

    Result<VerifyReport> result = verifier.Verify(RequestFor());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(verifier.stats().media_retries.load(), 1u);
    EXPECT_EQ(injector.TotalFires(), 1u);
  }
  TRIO_CHECK_OK(kernel.Unmount());
}

TEST_F(VerifierBoundsTest, PersistentMediaFaultSurfacesAsIoAfterRetries) {
  KernelController kernel(pool_);
  TRIO_CHECK_OK(kernel.Mount());
  {
    MaliciousLibFs fs(kernel);
    SetUpFile(kernel, fs);

    IntegrityVerifier verifier(pool_, kernel, kernel);
    FaultInjector injector(TestSeed());
    injector.Arm(kFaultVerifierMediaRead, FaultPolicy::Always());
    verifier.set_fault_injector(&injector);
    verifier.set_media_read_retries(2);

    Result<VerifyReport> result = verifier.Verify(RequestFor());
    ASSERT_FALSE(result.ok());
    EXPECT_TRUE(result.status().Is(ErrorCode::kIo)) << result.status().ToString();
    EXPECT_EQ(VerifyError::FromStatus(result.status()).cls,
              VerifyErrorClass::kMediaFailure);
    EXPECT_EQ(verifier.stats().media_retries.load(), 2u);  // Initial pass + 2 retries.
    EXPECT_EQ(injector.TotalFires(), 3u);
  }
  TRIO_CHECK_OK(kernel.Unmount());
}

// ---- Quarantine bounds: the impound store cannot grow without limit ----

TEST(QuarantineBoundsTest, OldestEntryEvictedBeyondCap) {
  NvmPool pool(8192);
  FormatOptions options;
  options.max_inodes = 4096;
  TRIO_CHECK_OK(Format(pool, options));
  KernelConfig config;
  config.max_quarantined_files = 2;
  KernelController kernel(pool, config);
  TRIO_CHECK_OK(kernel.Mount());
  {
    ArckFs victim(kernel);
    MaliciousLibFs attacker(kernel);
    Ino first_ino = kInvalidIno;
    for (int i = 0; i < 3; ++i) {
      const std::string path = "/q" + std::to_string(i);
      Result<Fd> fd = victim.Open(path, OpenFlags::CreateTrunc());
      TRIO_CHECK(fd.ok());
      TRIO_CHECK(victim.Pwrite(*fd, "data", 4, 0).ok());
      TRIO_CHECK_OK(victim.Close(*fd));
      Result<StatInfo> info = victim.Stat(path);
      TRIO_CHECK(info.ok());
      if (i == 0) {
        first_ino = info->ino;
      }
      TRIO_CHECK_OK(victim.ReleaseFile(path));
      TRIO_CHECK_OK(victim.ReleaseFile("/"));
      ASSERT_TRUE(attacker.AttackSizeBeyondCapacity(path).ok());
      Status released = attacker.ReleaseTarget(path);
      EXPECT_TRUE(released.Is(ErrorCode::kCorrupted)) << released.ToString();
    }
    EXPECT_EQ(kernel.QuarantineCount(), 2u);
    EXPECT_EQ(kernel.stats().quarantine_evictions.load(), 1u);
    // The first (oldest) impound was evicted to admit the third.
    EXPECT_TRUE(kernel.QuarantineErrorOf(first_ino).Is(ErrorCode::kNotFound));
  }
  TRIO_CHECK_OK(kernel.Unmount());
}

}  // namespace
}  // namespace trio
