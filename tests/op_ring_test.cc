// Op-ring semantics: SQE execution and CQE results, barrier (fsync) ordering — the
// barrier's CQE arrives only after every CQE of the ops submitted before it — group-commit
// fence coalescing (deferred span fences collapse into epoch closes), durability at the
// barrier (a reaped barrier CQE means nothing is left unpersisted), and crash consistency:
// exploring every fence of a ring workload shows that no op from an unfenced (unclosed)
// epoch survives recovery — recovered files are always a clean block prefix of what was
// submitted.

#include "src/libfs/op_ring.h"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "src/sim/crash_explorer.h"

namespace trio {
namespace {

constexpr size_t kPoolPages = 2048;

struct RingFixture {
  explicit RingFixture(NvmMode mode, ArckFsConfig config = MakeRingConfig()) {
    pool = std::make_unique<NvmPool>(kPoolPages, mode);
    TRIO_CHECK_OK(Format(*pool, FormatOptions{}));
    kernel = std::make_unique<KernelController>(*pool);
    TRIO_CHECK_OK(kernel->Mount());
    fs = std::make_unique<ArckFs>(*kernel, config);
  }

  static ArckFsConfig MakeRingConfig() {
    ArckFsConfig config;
    config.ring.enabled = true;
    config.ring.depth = 16;
    return config;
  }

  std::unique_ptr<NvmPool> pool;
  std::unique_ptr<KernelController> kernel;
  std::unique_ptr<ArckFs> fs;
};

std::string Block(char fill) { return std::string(kPageSize, fill); }

TEST(OpRingTest, ExecutesOpsAndReturnsResults) {
  RingFixture fx(NvmMode::kFast);
  OpRingEngine* ring = fx.fs->ring_engine();
  ASSERT_NE(ring, nullptr);

  const uint64_t create_ud = ring->SubmitCreate("/ringed", 0644, Sqe::kFlagAppend);
  ASSERT_NE(create_ud, 0u);
  Cqe created = ring->WaitCompletion();
  EXPECT_EQ(created.user_data, create_ud);
  ASSERT_TRUE(created.ok());
  const Fd fd = static_cast<Fd>(created.result);

  const std::string a = Block('a');
  const std::string b = Block('b');
  const uint64_t write_a = ring->SubmitWrite(fd, a.data(), a.size());
  const uint64_t write_b = ring->SubmitWrite(fd, b.data(), b.size());
  const Cqe cqe_a = ring->WaitCompletion();
  const Cqe cqe_b = ring->WaitCompletion();
  EXPECT_EQ(cqe_a.user_data, write_a);
  EXPECT_EQ(cqe_b.user_data, write_b);
  EXPECT_EQ(cqe_a.result, static_cast<int64_t>(kPageSize));
  EXPECT_EQ(cqe_b.result, static_cast<int64_t>(kPageSize));

  // The synchronous API sees the async writes (same FS, same core state).
  std::string read_back(2 * kPageSize, '\0');
  Result<size_t> read = fx.fs->Pread(fd, read_back.data(), read_back.size(), 0);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(*read, 2 * kPageSize);
  EXPECT_EQ(read_back, a + b);

  // Error results come back as negative codes, out of line like everything else.
  ring->SubmitUnlink("/ringed");
  EXPECT_EQ(ring->WaitCompletion().result, 0);
  ring->SubmitUnlink("/ringed");
  EXPECT_EQ(ring->WaitCompletion().code(), ErrorCode::kNotFound);

  // Paths that do not fit the fixed-size SQE are refused (synchronous fallback).
  EXPECT_EQ(ring->SubmitCreate("/" + std::string(kSqeMaxPath, 'x')), 0u);
}

TEST(OpRingTest, BarrierCompletesAfterAllPriorOps) {
  RingFixture fx(NvmMode::kFast);
  OpRingEngine* ring = fx.fs->ring_engine();

  ring->SubmitCreate("/barrier", 0644, Sqe::kFlagAppend);
  Cqe created = ring->WaitCompletion();
  ASSERT_TRUE(created.ok());
  const Fd fd = static_cast<Fd>(created.result);

  const std::string block = Block('q');
  std::set<uint64_t> writes;
  for (int i = 0; i < 8; ++i) {
    writes.insert(ring->SubmitWrite(fd, block.data(), block.size()));
  }
  const uint64_t barrier = ring->SubmitFsync(fd);
  for (int round = 0; round < 3; ++round) {  // Several batches against one drainer.
    for (int i = 0; i < 8; ++i) {
      writes.insert(ring->SubmitWrite(fd, block.data(), block.size()));
    }
  }
  ring->SubmitFsync(fd);

  // Reap everything; every write submitted before the first barrier must complete
  // before it (CQ order is completion order).
  bool barrier_seen = false;
  size_t before_barrier = 0;
  for (int i = 0; i < 8 + 1 + 24 + 1; ++i) {
    const Cqe cqe = ring->WaitCompletion();
    ASSERT_TRUE(cqe.ok()) << static_cast<int>(cqe.code());
    if (cqe.user_data == barrier) {
      barrier_seen = true;
      EXPECT_EQ(before_barrier, 8u) << "barrier completed before a prior op";
    } else if (!barrier_seen && writes.count(cqe.user_data) > 0) {
      ++before_barrier;
    }
  }
  EXPECT_TRUE(barrier_seen);
}

TEST(OpRingTest, EpochCoalescesFencesAcrossOps) {
  constexpr int kOps = 32;
  ArckFsConfig config = RingFixture::MakeRingConfig();
  config.ring.depth = 64;  // The whole burst fits one SQ, so it drains in one pass.
  RingFixture fx(NvmMode::kFast, config);
  OpRingEngine* ring = fx.fs->ring_engine();
  auto& registry = obs::StatRegistry::Global();

  ring->SubmitCreate("/coalesce", 0644, Sqe::kFlagAppend);
  const Cqe created = ring->WaitCompletion();
  ASSERT_TRUE(created.ok());
  const Fd fd = static_cast<Fd>(created.result);

  // Let the drainer park, then hand it the burst all at once: every op lands in ONE
  // drain pass and therefore one group-commit epoch. (One-at-a-time submission against
  // an idle drainer legitimately degenerates to one-op passes — still one fence per op's
  // ~3 deferred ones, but not the cross-op coalescing this test pins down.)
  while (!ring->DrainerParked()) {
    std::this_thread::yield();
  }

  const std::string block = Block('z');
  const uint64_t fences_before = registry.CounterValue("libfs", "fences");
  const uint64_t deferred_before = registry.CounterValue("libfs", "deferred_fences");
  const uint64_t passes_before = ring->stats().drain_passes.load();

  std::vector<Sqe> burst(kOps);
  for (Sqe& sqe : burst) {
    sqe.op = Sqe::Op::kWrite;
    sqe.fd = fd;
    sqe.buf = block.data();
    sqe.len = static_cast<uint32_t>(block.size());
  }
  ring->SubmitBurst(burst.data(), burst.size());
  ring->WaitIdle();

  const uint64_t fences = registry.CounterValue("libfs", "fences") - fences_before;
  const uint64_t deferred =
      registry.CounterValue("libfs", "deferred_fences") - deferred_before;
  // Each synchronous extending append issues ~3 fences (data, index/size commit, mtime).
  // Through the ring they all defer into the pass epoch, which closes ONCE: kOps ops,
  // ~3*kOps deferrals, one real fence.
  EXPECT_EQ(ring->stats().drain_passes.load() - passes_before, 1u);
  EXPECT_GE(deferred, static_cast<uint64_t>(kOps));
  EXPECT_LE(fences, 2u);
  EXPECT_GT(fences, 0u);
}

TEST(OpRingTest, ReapedBarrierMeansEverythingDurable) {
  RingFixture fx(NvmMode::kTracking);
  OpRingEngine* ring = fx.fs->ring_engine();

  ring->SubmitCreate("/durable", 0644, Sqe::kFlagAppend);
  const Cqe created = ring->WaitCompletion();
  ASSERT_TRUE(created.ok());
  const Fd fd = static_cast<Fd>(created.result);

  // Format/mount/lease-prefetch leave some bookkeeping lines written but never explicitly
  // persisted; the ring is only answerable for what its ops touch, so measure the delta.
  const size_t baseline = fx.pool->UnpersistedLineCount();

  const std::string block = Block('d');
  for (int i = 0; i < 6; ++i) {
    ring->SubmitWrite(fd, block.data(), block.size());
  }
  ring->SubmitFsync(fd);
  ring->WaitIdle();

  // The barrier CQE was posted after its epoch close: every clwb of every op before it
  // has been fenced, so the six data pages plus their index/size commits (400+ lines)
  // must all have drained — nothing new may be left in flight.
  EXPECT_LE(fx.pool->UnpersistedLineCount(), baseline);
}

// Crash-point sweep of a ring workload: at EVERY recorded fence, the recovered file must
// be a clean 4 KiB-block prefix of the submitted pattern — an op whose epoch never closed
// (no fence) must leave no trace, and a committed size must never outrun its data.
TEST(OpRingCrashTest, NoUnfencedEpochSurvivesRecovery) {
  CrashExplorerOptions options;
  options.pool_pages = kPoolPages;
  options.workload_config.ring.enabled = true;
  options.workload_config.ring.depth = 8;
  CrashExplorer explorer(options);

  constexpr int kAppends = 6;
  auto pattern = [](int i) { return Block(static_cast<char>('A' + i)); };

  Result<CrashExplorerReport> report = explorer.Explore(
      [&](ArckFs& fs) {
        OpRingEngine* ring = fs.ring_engine();
        TRIO_CHECK(ring != nullptr);
        ring->SubmitCreate("/log", 0644, Sqe::kFlagAppend);
        const Cqe created = ring->WaitCompletion();
        TRIO_CHECK(created.ok());
        const Fd fd = static_cast<Fd>(created.result);
        std::vector<std::string> blocks;
        for (int i = 0; i < kAppends; ++i) {
          blocks.push_back(pattern(i));
        }
        for (int i = 0; i < kAppends; ++i) {
          ring->SubmitWrite(fd, blocks[i].data(), blocks[i].size());
          if (i == kAppends / 2) {
            ring->SubmitFsync(fd);  // A barrier mid-stream: an extra epoch boundary.
          }
        }
        ring->SubmitFsync(fd);
        ring->WaitIdle();
      },
      [&](ArckFs& fs) -> Status {
        Result<StatInfo> info = fs.Stat("/log");
        if (!info.ok()) {
          return OkStatus();  // Crashed before the create committed: fine.
        }
        if (info->size % kPageSize != 0) {
          return Status(ErrorCode::kCorrupted, "size not a whole number of appends");
        }
        const size_t blocks = info->size / kPageSize;
        if (blocks > kAppends) {
          return Status(ErrorCode::kCorrupted, "more data than was ever submitted");
        }
        Result<Fd> fd = fs.Open("/log", OpenFlags::ReadOnly());
        TRIO_RETURN_IF_ERROR(fd.status());
        std::string data(info->size, '\0');
        if (info->size > 0) {
          Result<size_t> read = fs.Pread(*fd, data.data(), data.size(), 0);
          TRIO_RETURN_IF_ERROR(read.status());
        }
        (void)fs.Close(*fd);
        for (size_t i = 0; i < blocks; ++i) {
          if (data.compare(i * kPageSize, kPageSize, pattern(static_cast<int>(i))) != 0) {
            return Status(ErrorCode::kCorrupted,
                          "block " + std::to_string(i) + " is not the submitted content");
          }
        }
        return OkStatus();
      });

  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->Clean()) << report->failures.size() << " failing crash points, first: "
                               << (report->failures.empty() ? ""
                                                            : report->failures[0].what);
  EXPECT_GT(report->fences, 0u);
  // The whole point of the ring: far fewer fences than the ~3-per-append sync path.
  EXPECT_LT(report->fences, static_cast<size_t>(kAppends) * 3);
}

}  // namespace
}  // namespace trio
