// Unit tests for the kernel controller: registration, leasing, MMU grants, the
// concurrent-read/exclusive-write policy, revocation, checkpoints, ownership tables, the
// write-map log, permission enforcement, and trust-boundary bookkeeping.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/core_state.h"
#include "src/kernel/controller.h"

namespace trio {
namespace {

class KernelTest : public ::testing::Test {
 protected:
  KernelTest() : pool_(2048) {
    FormatOptions options;
    options.max_inodes = 1024;
    TRIO_CHECK_OK(Format(pool_, options));
    kernel_ = std::make_unique<KernelController>(pool_);
    TRIO_CHECK_OK(kernel_->Mount());
  }

  LibFsId Register(uint32_t uid = 0) {
    LibFsOptions options;
    options.uid = uid;
    options.gid = uid;
    return kernel_->RegisterLibFs(options);
  }

  NvmPool pool_;
  std::unique_ptr<KernelController> kernel_;
};

TEST_F(KernelTest, MountRejectsUnformattedPool) {
  NvmPool raw(64);
  KernelController kernel(raw);
  EXPECT_TRUE(kernel.Mount().Is(ErrorCode::kCorrupted));
}

TEST_F(KernelTest, RegisterGrantsSuperblockRead) {
  LibFsId id = Register();
  EXPECT_TRUE(kernel_->mmu().Check(id, 0, /*write=*/false));
  EXPECT_FALSE(kernel_->mmu().Check(id, 0, /*write=*/true));
  kernel_->UnregisterLibFs(id);
  EXPECT_FALSE(kernel_->mmu().Check(id, 0, false));
}

TEST_F(KernelTest, AllocPagesLeasesZeroedWritablePages) {
  LibFsId id = Register();
  std::vector<PageNumber> pages;
  ASSERT_TRUE(kernel_->AllocPages(id, 4, 0, &pages).ok());
  ASSERT_EQ(pages.size(), 4u);
  for (PageNumber p : pages) {
    EXPECT_TRUE(kernel_->mmu().Check(id, p, true));
    PageState state = kernel_->StateOfPage(p);
    EXPECT_EQ(state.state, ResourceState::kLeased);
    EXPECT_EQ(state.lessee, id);
    for (size_t i = 0; i < kPageSize; ++i) {
      ASSERT_EQ(pool_.PageAddress(p)[i], 0);
    }
  }
  kernel_->UnregisterLibFs(id);
}

TEST_F(KernelTest, FreePagesReturnsLeases) {
  LibFsId id = Register();
  const size_t free_before = kernel_->FreePageCount();
  std::vector<PageNumber> pages;
  ASSERT_TRUE(kernel_->AllocPages(id, 8, 0, &pages).ok());
  EXPECT_EQ(kernel_->FreePageCount(), free_before - 8);
  ASSERT_TRUE(kernel_->FreePages(id, pages).ok());
  EXPECT_EQ(kernel_->FreePageCount(), free_before);
  EXPECT_FALSE(kernel_->mmu().Check(id, pages[0], false));
  kernel_->UnregisterLibFs(id);
}

TEST_F(KernelTest, FreeingForeignPageRejected) {
  LibFsId a = Register();
  LibFsId b = Register();
  std::vector<PageNumber> pages;
  ASSERT_TRUE(kernel_->AllocPages(a, 1, 0, &pages).ok());
  EXPECT_TRUE(kernel_->FreePages(b, pages).Is(ErrorCode::kPermission));
  kernel_->UnregisterLibFs(a);
  kernel_->UnregisterLibFs(b);
}

TEST_F(KernelTest, InoAllocationUniqueAndRecycled) {
  LibFsId id = Register();
  std::vector<Ino> inos;
  ASSERT_TRUE(kernel_->AllocInos(id, 16, &inos).ok());
  std::set<Ino> unique(inos.begin(), inos.end());
  EXPECT_EQ(unique.size(), 16u);
  for (Ino ino : inos) {
    EXPECT_NE(ino, kRootIno);
    EXPECT_EQ(kernel_->StateOfIno(ino).state, ResourceState::kLeased);
  }
  ASSERT_TRUE(kernel_->FreeIno(id, inos[0]).ok());
  EXPECT_EQ(kernel_->StateOfIno(inos[0]).state, ResourceState::kFree);
  kernel_->UnregisterLibFs(id);
}

TEST_F(KernelTest, UnregisterReturnsAllLeases) {
  const size_t free_before = kernel_->FreePageCount();
  LibFsId id = Register();
  std::vector<PageNumber> pages;
  ASSERT_TRUE(kernel_->AllocPages(id, 16, 0, &pages).ok());
  kernel_->UnregisterLibFs(id);
  EXPECT_EQ(kernel_->FreePageCount(), free_before);
}

TEST_F(KernelTest, MapRootGrantsPagesAndEnforcesPolicy) {
  LibFsId a = Register();
  LibFsId b = Register();

  Result<MapInfo> read_a = kernel_->MapRoot(a, /*write=*/false);
  ASSERT_TRUE(read_a.ok());
  EXPECT_FALSE(read_a->writable);
  // Root's preallocated index page is now readable for A.
  const PageNumber root_index = SuperblockOf(pool_)->root.first_index_page;
  EXPECT_TRUE(kernel_->mmu().Check(a, root_index, false));
  EXPECT_FALSE(kernel_->mmu().Check(a, root_index, true));

  // Concurrent readers are fine.
  ASSERT_TRUE(kernel_->MapRoot(b, false).ok());

  // A writer revokes both readers (no revoke callbacks registered: forced release).
  Result<MapInfo> write_b = kernel_->MapFile(b, kInvalidIno, kRootIno, true);
  ASSERT_TRUE(write_b.ok());
  EXPECT_TRUE(write_b->writable);
  EXPECT_TRUE(kernel_->IsWriteMapped(kRootIno));
  EXPECT_TRUE(kernel_->mmu().Check(b, root_index, true));

  kernel_->UnregisterLibFs(a);
  kernel_->UnregisterLibFs(b);
  EXPECT_FALSE(kernel_->IsWriteMapped(kRootIno));
}

TEST_F(KernelTest, WriteConflictInvokesRevokeCallback) {
  std::atomic<int> revokes{0};
  LibFsOptions options;
  KernelController* kernel = kernel_.get();
  LibFsId holder = 0;
  options.callbacks.revoke = [&](Ino ino) {
    revokes.fetch_add(1);
    TRIO_CHECK_OK(kernel->UnmapFile(holder, ino));
  };
  holder = kernel_->RegisterLibFs(options);
  LibFsId requester = Register();

  ASSERT_TRUE(kernel_->MapRoot(holder, true).ok());
  ASSERT_TRUE(kernel_->MapRoot(requester, true).ok());
  EXPECT_EQ(revokes.load(), 1);
  EXPECT_GE(kernel_->stats().revocations.load(), 1u);

  kernel_->UnregisterLibFs(holder);
  kernel_->UnregisterLibFs(requester);
}

TEST_F(KernelTest, WriteMapLogPersistsGrants) {
  LibFsId id = Register();
  ASSERT_TRUE(kernel_->MapRoot(id, true).ok());
  const Superblock* sb = SuperblockOf(pool_);
  const auto* log = reinterpret_cast<const uint64_t*>(pool_.PageAddress(sb->wmap_log_page));
  bool found = false;
  for (size_t i = 0; i < kPageSize / 8; ++i) {
    found |= log[i] == kRootIno;
  }
  EXPECT_TRUE(found);
  ASSERT_TRUE(kernel_->UnmapFile(id, kRootIno).ok());
  found = false;
  for (size_t i = 0; i < kPageSize / 8; ++i) {
    found |= log[i] == kRootIno;
  }
  EXPECT_FALSE(found);
  kernel_->UnregisterLibFs(id);
}

TEST_F(KernelTest, PermissionDeniedForUnrelatedUser) {
  // Root directory is 0755 owned by uid 0: uid 7 may read, not write.
  LibFsId mallory = Register(/*uid=*/7);
  EXPECT_TRUE(kernel_->MapRoot(mallory, false).ok());
  ASSERT_TRUE(kernel_->UnmapFile(mallory, kRootIno).ok());
  EXPECT_TRUE(kernel_->MapRoot(mallory, true).status().Is(ErrorCode::kPermission));
  kernel_->UnregisterLibFs(mallory);
}

TEST_F(KernelTest, ChmodRequiresOwnership) {
  LibFsId mallory = Register(/*uid=*/7);
  EXPECT_TRUE(kernel_->Chmod(mallory, kRootIno, 0777).Is(ErrorCode::kPermission));
  LibFsId root = Register(/*uid=*/0);
  EXPECT_TRUE(kernel_->Chmod(root, kRootIno, 0700).ok());
  EXPECT_EQ(ShadowInodeOf(pool_, kRootIno)->mode & kModePermMask, 0700u);
  // And the cached copy in the superblock dirent matches (I4 consistency).
  EXPECT_EQ(SuperblockOf(pool_)->root.mode & kModePermMask, 0700u);
  kernel_->UnregisterLibFs(mallory);
  kernel_->UnregisterLibFs(root);
}

TEST_F(KernelTest, ChownRequiresRoot) {
  LibFsId mallory = Register(/*uid=*/7);
  EXPECT_TRUE(kernel_->Chown(mallory, kRootIno, 7, 7).Is(ErrorCode::kPermission));
  LibFsId root = Register(/*uid=*/0);
  EXPECT_TRUE(kernel_->Chown(root, kRootIno, 3, 4).ok());
  EXPECT_EQ(ShadowInodeOf(pool_, kRootIno)->uid, 3u);
  EXPECT_EQ(ShadowInodeOf(pool_, kRootIno)->gid, 4u);
  kernel_->UnregisterLibFs(mallory);
  kernel_->UnregisterLibFs(root);
}

TEST_F(KernelTest, MapUnknownInoFails) {
  LibFsId id = Register();
  EXPECT_TRUE(kernel_->MapFile(id, kRootIno, 999, false).status().Is(ErrorCode::kNotFound));
  kernel_->UnregisterLibFs(id);
}

TEST_F(KernelTest, NoSpaceWhenPoolExhausted) {
  LibFsId id = Register();
  std::vector<PageNumber> pages;
  Status status = kernel_->AllocPages(id, pool_.num_pages(), 0, &pages);
  EXPECT_TRUE(status.Is(ErrorCode::kNoSpace));
  EXPECT_TRUE(pages.empty());  // All-or-nothing.
  kernel_->UnregisterLibFs(id);
}

TEST_F(KernelTest, SyscallsAreCounted) {
  const uint64_t before = kernel_->stats().syscalls.load();
  LibFsId id = Register();
  std::vector<PageNumber> pages;
  ASSERT_TRUE(kernel_->AllocPages(id, 1, 0, &pages).ok());
  ASSERT_TRUE(kernel_->MapRoot(id, false).ok());
  EXPECT_GE(kernel_->stats().syscalls.load(), before + 3);
  kernel_->UnregisterLibFs(id);
}

TEST_F(KernelTest, UnmountBlockedWhileLibFsRegistered) {
  LibFsId id = Register();
  EXPECT_TRUE(kernel_->Unmount().Is(ErrorCode::kBusy));
  kernel_->UnregisterLibFs(id);
  EXPECT_TRUE(kernel_->Unmount().ok());
}

TEST_F(KernelTest, CleanRemountRequiresNoRecovery) {
  TRIO_CHECK_OK(kernel_->Unmount());
  KernelController fresh(pool_);
  ASSERT_TRUE(fresh.Mount().ok());
  EXPECT_FALSE(fresh.NeedsRecovery());
  TRIO_CHECK_OK(fresh.Unmount());
  kernel_ = std::make_unique<KernelController>(pool_);
  TRIO_CHECK_OK(kernel_->Mount());
}

TEST_F(KernelTest, UncleanRemountFlagsRecovery) {
  // No Unmount: simulate the crash by just building a second controller.
  KernelController fresh(pool_);
  ASSERT_TRUE(fresh.Mount().ok());
  EXPECT_TRUE(fresh.NeedsRecovery());
  EXPECT_TRUE(fresh.RunRecovery().ok());
  EXPECT_FALSE(fresh.NeedsRecovery());
}

}  // namespace
}  // namespace trio
