// Direct unit tests of the integrity verifier against hand-built core state and mock
// ownership tables — exercising each I1-I4 clause in isolation, plus the
// new-child/moved-in/removed-child classification logic the kernel relies on.

#include <gtest/gtest.h>

#include <unordered_map>
#include <unordered_set>

#include "src/core/core_state.h"
#include "src/verifier/verifier.h"

namespace trio {
namespace {

class FakeOwnership : public OwnershipView {
 public:
  PageState StateOfPage(PageNumber page) const override {
    auto it = pages_.find(page);
    return it == pages_.end() ? PageState{} : it->second;
  }
  InoState StateOfIno(Ino ino) const override {
    auto it = inos_.find(ino);
    return it == inos_.end() ? InoState{} : it->second;
  }

  void OwnPage(PageNumber page, Ino owner) {
    pages_[page] = PageState{ResourceState::kOwned, kNoLibFs, owner};
  }
  void LeasePage(PageNumber page, LibFsId libfs) {
    pages_[page] = PageState{ResourceState::kLeased, libfs, kInvalidIno};
  }
  void OwnIno(Ino ino, Ino parent) {
    inos_[ino] = InoState{ResourceState::kOwned, kNoLibFs, parent};
  }
  void LeaseIno(Ino ino, LibFsId libfs) {
    inos_[ino] = InoState{ResourceState::kLeased, libfs, kInvalidIno};
  }

 private:
  std::unordered_map<PageNumber, PageState> pages_;
  std::unordered_map<Ino, InoState> inos_;
};

class FakeEnv : public VerifyEnv {
 public:
  Status CheckRemovedChildDir(Ino child, LibFsId writer) const override {
    if (corrupt_removed_.count(child) != 0) {
      return Corrupted("I3: removed child directory violation");
    }
    return OkStatus();
  }
  bool IsMovePermitted(Ino child, Ino new_parent, LibFsId writer) const override {
    return moves_permitted_;
  }

  std::unordered_set<Ino> corrupt_removed_;
  bool moves_permitted_ = false;
};

constexpr LibFsId kWriter = 7;

class VerifierTest : public ::testing::Test {
 protected:
  VerifierTest() : pool_(512) {
    FormatOptions options;
    options.max_inodes = 256;
    TRIO_CHECK_OK(Format(pool_, options));
    verifier_ = std::make_unique<IntegrityVerifier>(pool_, ownership_, env_);
    next_page_ = FileRegionStart(pool_) + 16;
  }

  // Allocates a fresh, zeroed page (marked leased to the writer by default).
  PageNumber NewPage(bool leased = true) {
    PageNumber page = next_page_++;
    pool_.Set(pool_.PageAddress(page), 0, kPageSize);
    if (leased) {
      ownership_.LeasePage(page, kWriter);
    }
    return page;
  }

  // Builds a regular file: dirent in a dir data page + 1 index page + n data pages.
  DirentBlock* BuildRegularFile(Ino ino, uint64_t size, int data_pages) {
    dirent_page_ = NewPage();
    auto* dir_page = reinterpret_cast<DirDataPage*>(pool_.PageAddress(dirent_page_));
    DirentBlock* d = &dir_page->slots[0];
    std::memset(d, 0, sizeof(*d));
    d->ino = ino;
    d->mode = kModeRegular | 0644;
    d->uid = 1;
    d->gid = 1;
    d->nlink = 1;
    d->size = size;
    d->SetName("file");
    const PageNumber index = NewPage();
    d->first_index_page = index;
    auto* ip = reinterpret_cast<IndexPage*>(pool_.PageAddress(index));
    for (int i = 0; i < data_pages; ++i) {
      ip->entries[i] = NewPage();
    }
    return d;
  }

  VerifyRequest RequestFor(Ino ino, const DirentBlock* dirent) {
    VerifyRequest request;
    request.ino = ino;
    request.dirent = dirent;
    request.writer = kWriter;
    request.writer_uid = 1;
    request.writer_gid = 1;
    return request;
  }

  NvmPool pool_;
  FakeOwnership ownership_;
  FakeEnv env_;
  std::unique_ptr<IntegrityVerifier> verifier_;
  PageNumber next_page_;
  PageNumber dirent_page_ = 0;
};

TEST_F(VerifierTest, FreshFileWithLeasedResourcesPasses) {
  ownership_.LeaseIno(42, kWriter);
  DirentBlock* d = BuildRegularFile(42, 3000, 1);
  Result<VerifyReport> report = verifier_->Verify(RequestFor(42, d));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->pages.size(), 2u);  // Index + one data page.
}

TEST_F(VerifierTest, InoNeitherOwnedNorLeasedFails) {
  DirentBlock* d = BuildRegularFile(42, 100, 1);  // Ino 42 unknown to ownership.
  EXPECT_TRUE(verifier_->Verify(RequestFor(42, d)).status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierTest, InoLeasedToAnotherLibFsFails) {
  ownership_.LeaseIno(42, kWriter + 1);
  DirentBlock* d = BuildRegularFile(42, 100, 1);
  EXPECT_TRUE(verifier_->Verify(RequestFor(42, d)).status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierTest, PageOwnedByOtherFileFails) {
  ownership_.LeaseIno(42, kWriter);
  DirentBlock* d = BuildRegularFile(42, 100, 1);
  // Point a second entry at a page owned by someone else's file.
  auto* ip = reinterpret_cast<IndexPage*>(pool_.PageAddress(d->first_index_page));
  const PageNumber stolen = NewPage(/*leased=*/false);
  ownership_.OwnPage(stolen, /*owner=*/99);
  ip->entries[1] = stolen;
  Result<VerifyReport> report = verifier_->Verify(RequestFor(42, d));
  EXPECT_TRUE(report.status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierTest, DoubleReferenceWithinFileFails) {
  ownership_.LeaseIno(42, kWriter);
  DirentBlock* d = BuildRegularFile(42, 100, 1);
  auto* ip = reinterpret_cast<IndexPage*>(pool_.PageAddress(d->first_index_page));
  ip->entries[1] = ip->entries[0];
  EXPECT_TRUE(verifier_->Verify(RequestFor(42, d)).status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierTest, SizeBeyondChainCapacityFails) {
  ownership_.LeaseIno(42, kWriter);
  DirentBlock* d = BuildRegularFile(42, /*size=*/kIndexEntriesPerPage * kPageSize + 1, 1);
  EXPECT_TRUE(verifier_->Verify(RequestFor(42, d)).status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierTest, SizeWithinCapacityWithHolesPasses) {
  ownership_.LeaseIno(42, kWriter);
  // Sparse: size covers the whole (single-index-page) chain, only one data page present.
  DirentBlock* d = BuildRegularFile(42, kIndexEntriesPerPage * kPageSize, 1);
  EXPECT_TRUE(verifier_->Verify(RequestFor(42, d)).ok());
}

TEST_F(VerifierTest, NonzeroReservedFails) {
  ownership_.LeaseIno(42, kWriter);
  DirentBlock* d = BuildRegularFile(42, 100, 1);
  d->reserved[3] = 1;
  EXPECT_TRUE(verifier_->Verify(RequestFor(42, d)).status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierTest, NonzeroNameTailFails) {
  ownership_.LeaseIno(42, kWriter);
  DirentBlock* d = BuildRegularFile(42, 100, 1);
  d->name[d->name_len + 2] = 'x';  // Hidden payload after the name.
  EXPECT_TRUE(verifier_->Verify(RequestFor(42, d)).status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierTest, WrongCreatorUidFails) {
  ownership_.LeaseIno(42, kWriter);
  DirentBlock* d = BuildRegularFile(42, 100, 1);
  d->uid = 55;  // Fresh file must be owned by the writer (uid 1).
  EXPECT_TRUE(verifier_->Verify(RequestFor(42, d)).status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierTest, ExistingFilePermissionCacheMismatchFails) {
  // Existing file: shadow inode is ground truth (I4).
  ownership_.OwnIno(42, kRootIno);
  DirentBlock* d = BuildRegularFile(42, 100, 1);
  ownership_.OwnPage(d->first_index_page, 42);
  auto* ip = reinterpret_cast<IndexPage*>(pool_.PageAddress(d->first_index_page));
  ownership_.OwnPage(ip->entries[0], 42);
  ShadowInode* shadow = ShadowInodeOf(pool_, 42);
  ShadowInode truth{kModeRegular | 0644, 1, 1, 1};
  pool_.Write(shadow, &truth, sizeof(truth));
  EXPECT_TRUE(verifier_->Verify(RequestFor(42, d)).ok());

  d->mode = kModeRegular | 0777;  // Attacker edits the cached copy.
  EXPECT_TRUE(verifier_->Verify(RequestFor(42, d)).status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierTest, DirentInoMismatchFails) {
  ownership_.LeaseIno(42, kWriter);
  DirentBlock* d = BuildRegularFile(42, 100, 1);
  VerifyRequest request = RequestFor(/*ino=*/43, d);  // Identity mismatch.
  ownership_.LeaseIno(43, kWriter);
  EXPECT_TRUE(verifier_->Verify(request).status().Is(ErrorCode::kCorrupted));
}

// ---- Directory-level checks ----

class VerifierDirTest : public VerifierTest {
 protected:
  // Builds a directory (ino `dir_ino`, owned) with `children` fresh child dirents.
  DirentBlock* BuildDirectory(Ino dir_ino, int children) {
    dir_dirent_page_ = NewPage();
    auto* holder = reinterpret_cast<DirDataPage*>(pool_.PageAddress(dir_dirent_page_));
    DirentBlock* d = &holder->slots[0];
    std::memset(d, 0, sizeof(*d));
    d->ino = dir_ino;
    d->mode = kModeDirectory | 0755;
    d->uid = 1;
    d->gid = 1;
    d->nlink = 1;
    d->SetName("dir");
    const PageNumber index = NewPage();
    d->first_index_page = index;
    const PageNumber data = NewPage();
    reinterpret_cast<IndexPage*>(pool_.PageAddress(index))->entries[0] = data;
    auto* dir_data = reinterpret_cast<DirDataPage*>(pool_.PageAddress(data));
    for (int i = 0; i < children; ++i) {
      DirentBlock* child = &dir_data->slots[i];
      std::memset(child, 0, sizeof(*child));
      child->ino = 100 + i;
      child->mode = kModeRegular | 0600;
      child->uid = 1;
      child->gid = 1;
      child->nlink = 1;
      child->SetName("c" + std::to_string(i));
      ownership_.LeaseIno(100 + i, kWriter);
    }
    ownership_.OwnIno(dir_ino, kRootIno);
    ownership_.OwnPage(index, dir_ino);
    ownership_.OwnPage(data, dir_ino);
    ShadowInode truth{kModeDirectory | 0755, 1, 1, 1};
    pool_.Write(ShadowInodeOf(pool_, dir_ino), &truth, sizeof(truth));
    dir_data_page_ = data;
    return d;
  }

  PageNumber dir_dirent_page_ = 0;
  PageNumber dir_data_page_ = 0;
};

TEST_F(VerifierDirTest, FreshChildrenReported) {
  DirentBlock* d = BuildDirectory(50, 3);
  Result<VerifyReport> report = verifier_->Verify(RequestFor(50, d));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->new_children.size(), 3u);
  EXPECT_EQ(report->live_dirents, 3u);
  EXPECT_TRUE(report->removed_children.empty());
}

TEST_F(VerifierDirTest, DuplicateChildNamesFail) {
  DirentBlock* d = BuildDirectory(50, 2);
  auto* data = reinterpret_cast<DirDataPage*>(pool_.PageAddress(dir_data_page_));
  data->slots[1].SetName("c0");  // Same as slot 0.
  EXPECT_TRUE(verifier_->Verify(RequestFor(50, d)).status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierDirTest, TwoDirentsSameInoFail) {
  DirentBlock* d = BuildDirectory(50, 2);
  auto* data = reinterpret_cast<DirDataPage*>(pool_.PageAddress(dir_data_page_));
  data->slots[1].ino = data->slots[0].ino;
  EXPECT_TRUE(verifier_->Verify(RequestFor(50, d)).status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierDirTest, RemovedChildDiffedAgainstCheckpoint) {
  DirentBlock* d = BuildDirectory(50, 2);
  std::vector<CheckpointChild> checkpoint = {{100, false}, {101, false}, {180, false}};
  ownership_.OwnIno(180, 50);  // Was a child; now gone from the dirents.
  VerifyRequest request = RequestFor(50, d);
  request.checkpoint_children = &checkpoint;
  Result<VerifyReport> report = verifier_->Verify(request);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->removed_children.size(), 1u);
  EXPECT_EQ(report->removed_children[0], 180u);
}

TEST_F(VerifierDirTest, RemovedChildDirCheckedViaEnv) {
  DirentBlock* d = BuildDirectory(50, 1);
  std::vector<CheckpointChild> checkpoint = {{100, false}, {180, true}};
  ownership_.OwnIno(180, 50);
  env_.corrupt_removed_.insert(180);  // Kernel says: still mapped / not empty.
  VerifyRequest request = RequestFor(50, d);
  request.checkpoint_children = &checkpoint;
  EXPECT_TRUE(verifier_->Verify(request).status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierDirTest, MovedInChildNeedsPermission) {
  DirentBlock* d = BuildDirectory(50, 1);
  // Slot 0's ino is owned by a *different* parent: a rename into this directory.
  ownership_.OwnIno(100, /*parent=*/77);
  ShadowInode truth{kModeRegular | 0600, 1, 1, 1};
  pool_.Write(ShadowInodeOf(pool_, 100), &truth, sizeof(truth));

  env_.moves_permitted_ = false;
  EXPECT_TRUE(verifier_->Verify(RequestFor(50, d)).status().Is(ErrorCode::kCorrupted));

  env_.moves_permitted_ = true;
  Result<VerifyReport> report = verifier_->Verify(RequestFor(50, d));
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->moved_in.size(), 1u);
  EXPECT_EQ(report->moved_in[0].ino, 100u);
  EXPECT_EQ(report->moved_in[0].old_parent, 77u);
}

TEST_F(VerifierDirTest, DirectoryWithNonzeroSizeFails) {
  DirentBlock* d = BuildDirectory(50, 1);
  d->size = 4096;
  EXPECT_TRUE(verifier_->Verify(RequestFor(50, d)).status().Is(ErrorCode::kCorrupted));
}

TEST_F(VerifierDirTest, StatsCountFailures) {
  DirentBlock* d = BuildDirectory(50, 1);
  d->size = 4096;
  (void)verifier_->Verify(RequestFor(50, d));
  EXPECT_GE(verifier_->stats().files_verified.load(), 1u);
  EXPECT_GE(verifier_->stats().failures.load(), 1u);
}

}  // namespace
}  // namespace trio
