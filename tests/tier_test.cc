// Absorb-tier tests: background digestion to the slow backend, the tier-entry encoding
// in index chains, promote-cache reads, promote-for-write conversion, reconcile-time
// backend-slot accounting, crash sweeps over a digestion workload, and the LeaseCache
// async-refill satellite.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/attacks/attacks.h"
#include "src/core/core_state.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "src/sim/backend.h"
#include "src/sim/crash_explorer.h"
#include "src/verifier/verify_error.h"

namespace trio {
namespace {

class TierTest : public ::testing::Test {
 protected:
  static constexpr size_t kPoolPages = 2048;

  void Boot(double high = 0.75, double low = 0.50, bool background = false) {
    pool_ = std::make_unique<NvmPool>(kPoolPages);
    FormatOptions options;
    options.max_inodes = 1024;
    TRIO_CHECK_OK(Format(*pool_, options));
    backend_ = std::make_unique<SlowBackend>();
    KernelConfig config;
    config.tier.backend = backend_.get();
    config.tier.high_watermark = high;
    config.tier.low_watermark = low;
    config.tier.batch_pages = 16;
    config.tier.start_digestion = background;
    config.tier.scan_interval_ms = 1;
    kernel_ = std::make_unique<KernelController>(*pool_, config);
    TRIO_CHECK_OK(kernel_->Mount());
    ArckFsConfig fs_config;
    fs_config.promote_cache_slots = 64;
    fs_ = std::make_unique<ArckFs>(*kernel_, fs_config);
  }

  void TearDown() override {
    fs_.reset();
    kernel_.reset();
  }

  Status WriteFile(const std::string& path, size_t pages, char fill) {
    TRIO_ASSIGN_OR_RETURN(Fd fd, fs_->Open(path, OpenFlags::CreateRw()));
    std::string block(kPageSize, fill);
    for (size_t p = 0; p < pages; ++p) {
      block[0] = static_cast<char>('0' + (p % 10));  // Per-page marker.
      TRIO_RETURN_IF_ERROR(
          fs_->Pwrite(fd, block.data(), block.size(), p * kPageSize).status());
    }
    return fs_->Close(fd);
  }

  // Finds a file's dirent by raw tree scan (fsck-style, no LibFS involved).
  DirentBlock* FindDirent(const std::string& name) {
    DirentBlock* found = nullptr;
    const Superblock* sb = SuperblockOf(*pool_);
    std::function<void(const DirentBlock*)> walk = [&](const DirentBlock* dir) {
      (void)ForEachDirent(*pool_, dir->first_index_page,
                          [&](DirentBlock* d, PageNumber, size_t) -> Status {
                            if (d->Name() == name) {
                              found = d;
                            } else if (d->IsDirectory()) {
                              walk(d);
                            }
                            return OkStatus();
                          });
    };
    walk(&sb->root);
    return found;
  }

  // Count tier-tagged entries in the file's index chain (core-state truth, not radix).
  size_t TierEntryCount(const std::string& name) { return TierSlots(name).size(); }

  // The backend slot numbers the file's index chain references, in file-page order.
  std::vector<uint64_t> TierSlots(const std::string& name) {
    DirentBlock* dirent = FindDirent(name);
    TRIO_CHECK(dirent != nullptr);
    std::vector<uint64_t> slots;
    TRIO_CHECK_OK(ForEachDataEntry(*pool_, dirent->first_index_page,
                                   [&](uint64_t, uint64_t entry) -> Status {
                                     if (IsTierEntry(entry)) {
                                       slots.push_back(TierSlotOfEntry(entry));
                                     }
                                     return OkStatus();
                                   }));
    return slots;
  }

  std::unique_ptr<NvmPool> pool_;
  std::unique_ptr<SlowBackend> backend_;
  std::unique_ptr<KernelController> kernel_;
  std::unique_ptr<ArckFs> fs_;
};

TEST_F(TierTest, DigestNowMigratesColdFileAndReadsComeBack) {
  Boot();
  ASSERT_TRUE(WriteFile("/cold", 8, 'a').ok());
  ASSERT_TRUE(fs_->ReleaseFile("/cold").ok());

  const size_t digested = kernel_->DigestNow(64);
  EXPECT_GT(digested, 0u);
  EXPECT_EQ(backend_->OwnedSlotCount(), digested);
  EXPECT_GT(kernel_->tier_stats().digest_pages.load(), 0u);

  // Every digested page reads back with the bytes it carried.
  Result<Fd> fd = fs_->Open("/cold", OpenFlags::ReadOnly());
  ASSERT_TRUE(fd.ok());
  std::vector<char> buffer(kPageSize);
  for (size_t p = 0; p < 8; ++p) {
    Result<size_t> n = fs_->Pread(*fd, buffer.data(), buffer.size(), p * kPageSize);
    ASSERT_TRUE(n.ok()) << n.status().ToString();
    ASSERT_EQ(*n, kPageSize);
    EXPECT_EQ(buffer[0], static_cast<char>('0' + (p % 10)));
    EXPECT_EQ(buffer[1], 'a');
  }
  ASSERT_TRUE(fs_->Close(*fd).ok());
}

TEST_F(TierTest, PromoteForWriteConvertsEntryAndFreesSlotAtReconcile) {
  Boot();
  ASSERT_TRUE(WriteFile("/conv", 4, 'c').ok());
  ASSERT_TRUE(fs_->ReleaseFile("/conv").ok());
  const size_t digested = kernel_->DigestNow(64);
  ASSERT_EQ(digested, 4u);
  ASSERT_EQ(TierEntryCount("conv"), 4u);

  // Overwriting a digested page converts its tier entry back to an NVM page; the
  // orphaned backend slot is freed when the release reconciles the index chain.
  Result<Fd> fd = fs_->Open("/conv", OpenFlags::ReadWrite());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  std::string block(kPageSize, 'N');
  ASSERT_TRUE(fs_->Pwrite(*fd, block.data(), block.size(), kPageSize).ok());
  ASSERT_TRUE(fs_->Close(*fd).ok());
  ASSERT_TRUE(fs_->ReleaseFile("/conv").ok());

  EXPECT_EQ(TierEntryCount("conv"), 3u);
  EXPECT_EQ(backend_->OwnedSlotCount(), 3u);
  EXPECT_GE(kernel_->tier_stats().backend_slots_freed.load(), 1u);

  fd = fs_->Open("/conv", OpenFlags::ReadOnly());
  ASSERT_TRUE(fd.ok());
  std::vector<char> buffer(kPageSize);
  ASSERT_TRUE(fs_->Pread(*fd, buffer.data(), buffer.size(), kPageSize).ok());
  EXPECT_EQ(buffer[0], 'N');
  ASSERT_TRUE(fs_->Pread(*fd, buffer.data(), buffer.size(), 2 * kPageSize).ok());
  EXPECT_EQ(buffer[1], 'c');  // Untouched digested neighbours still read back.
  ASSERT_TRUE(fs_->Close(*fd).ok());
}

TEST_F(TierTest, DatasetLargerThanNvmFillsViaWatermarkStalls) {
  Boot(/*high=*/0.55, /*low=*/0.35, /*background=*/true);
  // ~4x the 2048-page pool: 128 files x 64 data pages (+1 index page each).
  for (int f = 0; f < 128; ++f) {
    const std::string path = "/big" + std::to_string(f);
    ASSERT_TRUE(WriteFile(path, 64, 'b').ok()) << "file " << f;
    ASSERT_TRUE(fs_->ReleaseFile(path).ok()) << "file " << f;
  }
  EXPECT_GT(kernel_->tier_stats().digest_pages.load(), 0u);
  EXPECT_LT(kernel_->NvmOccupancy(), 1.0);
}

// ---- Crash sweep over a digestion workload ----
//
// Crash at EVERY fence while a file is digested to the backend and then promoted back
// for write. After each materialized crash the recovered image must be fsck-clean
// including G7 against the backend's rebuilt owner table — no page owned by both tiers,
// no slot owned by two files, no slot lost in flight — and the overwritten page must
// read back all-old or all-new, never a mix.
TEST_F(TierTest, CrashSweepDigestionAndPromoteBackStaysConsistent) {
  SlowBackend backend;  // Outlives every boot; each Mount re-adopts against it.
  CrashExplorerOptions options;
  options.pool_pages = 1024;
  options.max_inodes = 256;
  options.kernel_config.tier.backend = &backend;
  options.kernel_config.tier.batch_pages = 8;
  // start_digestion stays false: DigestNow from the workload thread keeps the recorded
  // fence sequence deterministic, so the sweep is exhaustive and reproducible.

  size_t digested = 0;
  CrashExplorer explorer(options);
  Result<CrashExplorerReport> report = explorer.Explore(
      [&](ArckFs& fs) {
        Result<Fd> fd = fs.Open("/cold", OpenFlags::CreateRw());
        TRIO_CHECK(fd.ok()) << fd.status().ToString();
        const std::string old_page(kPageSize, 'a');
        for (size_t p = 0; p < 6; ++p) {
          TRIO_CHECK(
              fs.Pwrite(*fd, old_page.data(), old_page.size(), p * kPageSize).ok());
        }
        TRIO_CHECK_OK(fs.Close(*fd));
        TRIO_CHECK_OK(fs.ReleaseFile("/cold"));
        digested = fs.kernel().DigestNow(64);  // Migration fences recorded here.

        // Promote-back for write: overwriting a digested page converts its tier entry
        // back to a fresh NVM page (conversion + reconcile fences recorded too).
        fd = fs.Open("/cold", OpenFlags::ReadWrite());
        TRIO_CHECK(fd.ok()) << fd.status().ToString();
        const std::string new_page(kPageSize, 'B');
        TRIO_CHECK(
            fs.Pwrite(*fd, new_page.data(), new_page.size(), 2 * kPageSize).ok());
        TRIO_CHECK_OK(fs.Close(*fd));
        TRIO_CHECK_OK(fs.ReleaseFile("/cold"));
      },
      [](ArckFs& fs) -> Status {
        Result<Fd> fd = fs.Open("/cold", OpenFlags::ReadOnly());
        if (!fd.ok()) {
          // Crashed before the create became durable: an empty tree is a legal outcome.
          return fd.status().Is(ErrorCode::kNotFound) ? OkStatus() : fd.status();
        }
        Result<StatInfo> info = fs.Stat("/cold");
        TRIO_RETURN_IF_ERROR(info.status());
        Status verdict = OkStatus();
        if (info->size >= 3 * kPageSize) {
          std::vector<char> page(kPageSize);
          Result<size_t> n = fs.Pread(*fd, page.data(), page.size(), 2 * kPageSize);
          if (!n.ok()) {
            verdict = n.status();
          } else if (*n != kPageSize) {
            verdict = Internal("short read of the overwritten page");
          } else if (page[0] != 'a' && page[0] != 'B') {
            verdict = Corrupted("page 2 is neither old nor new content");
          } else {
            for (char c : page) {
              if (c != page[0]) {
                verdict = Corrupted("page 2 mixes old and new content");
                break;
              }
            }
          }
        }
        Status closed = fs.Close(*fd);
        return verdict.ok() ? closed : verdict;
      });
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(digested, 0u);
  EXPECT_TRUE(report->Clean())
      << report->failures.size() << " failing crash points; first at fence "
      << report->failures.front().fence << ": " << report->failures.front().what;
  EXPECT_EQ(report->explored, report->fences + 1);  // Exhaustive: every fence swept.
  EXPECT_GT(explorer.stats().fsck_runs.load(), 0u);
}

// ---- Forged digested-page mapping, backend configured ----
//
// A malicious LibFS swaps one of its own tier entries for a slot the backend records as
// owned by ANOTHER file. CheckTierSlot must condemn the release (a LibFS that could mint
// slots could read other tenants' digested data at reconcile), the forger is
// quarantined, and the victim's digested data stays readable. The no-backend variant of
// this forgery lives in the scripted-corruption corpus ("index_forged_tier_mapping").
TEST_F(TierTest, ForgedTierMappingStealingAnotherFilesSlotIsQuarantined) {
  Boot();
  ASSERT_TRUE(WriteFile("/mine", 3, 'm').ok());
  ASSERT_TRUE(fs_->ReleaseFile("/mine").ok());
  ASSERT_TRUE(WriteFile("/theirs", 3, 't').ok());
  ASSERT_TRUE(fs_->ReleaseFile("/theirs").ok());
  ASSERT_EQ(kernel_->DigestNow(64), 6u);

  const std::vector<uint64_t> their_slots = TierSlots("theirs");
  ASSERT_EQ(their_slots.size(), 3u);

  MaliciousLibFs attacker(*kernel_);
  Result<DirentBlock*> dirent = attacker.MapTarget("/mine");
  ASSERT_TRUE(dirent.ok()) << dirent.status().ToString();
  auto* index = reinterpret_cast<IndexPage*>(
      pool_->PageAddress((*dirent)->first_index_page));
  ASSERT_TRUE(IsTierEntry(index->entries[0]));
  ASSERT_TRUE(attacker.RawStore64(&index->entries[0], MakeTierEntry(their_slots[0])));

  Status released = attacker.ReleaseTarget("/mine");
  ASSERT_FALSE(released.ok());
  EXPECT_TRUE(VerifyError::IsStructured(released)) << released.ToString();
  EXPECT_EQ(VerifyError::FromStatus(released).cls, VerifyErrorClass::kForeignPage)
      << released.ToString();
  EXPECT_GE(kernel_->QuarantineCount(), 1u);

  // The victim's digested file is untouched and still promotes cleanly.
  Result<Fd> fd = fs_->Open("/theirs", OpenFlags::ReadOnly());
  ASSERT_TRUE(fd.ok()) << fd.status().ToString();
  std::vector<char> buffer(kPageSize);
  ASSERT_TRUE(fs_->Pread(*fd, buffer.data(), buffer.size(), 0).ok());
  EXPECT_EQ(buffer[1], 't');
  ASSERT_TRUE(fs_->Close(*fd).ok());
}

// ---- LeaseCache satellites ----

// Steady allocation must be fed by the background refill worker; the hot path traps
// into the kernel only for the very first (dry-cache) batch.
TEST_F(TierTest, LeaseCacheRefillsMoveOffTheHotPath) {
  Boot();
  LeaseCache& leases = fs_->leases();
  ASSERT_EQ(leases.async_refills(), 0u);

  // Default batch is 64: the first alloc pays one sync trap, and dropping under a
  // quarter of the batch (16 left, i.e. the 49th alloc) queues an async refill.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(leases.AllocPage(0).ok());
  }
  for (int tries = 0; tries < 2000 && leases.async_refills() == 0; ++tries) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(leases.async_refills(), 1u);

  // With the worker keeping the shard topped up, further allocation never traps.
  const uint64_t sync_before = leases.sync_refills();
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(leases.AllocPage(0).ok());
  }
  EXPECT_EQ(leases.sync_refills(), sync_before);
  EXPECT_EQ(sync_before, 1u);  // Only the startup dry-cache trap was synchronous.
}

// A recycled (dirty) page handed back by the LeaseCache must be re-zeroed when it is
// reused by a partial write: the untouched head of the page must read as zeros, never
// as the previous tenant's bytes.
TEST_F(TierTest, RecycledPageIsReZeroedOnThePartialWritePath) {
  Boot();
  // Force the one-time allocations (journal shards, the root's dirent page) through the
  // cache first, so the scribbled pages below are reused by /partial's own chain rather
  // than swallowed by journal initialization.
  ASSERT_TRUE(WriteFile("/warm", 1, 'w').ok());

  LeaseCache& leases = fs_->leases();
  // Scribble two leased pages and recycle both: the first Pwrite below allocates the
  // file's index page AND its data page, so whichever order they pop in, the data page
  // is provably dirty media.
  Result<PageNumber> p1 = leases.AllocPage(0);
  Result<PageNumber> p2 = leases.AllocPage(0);
  ASSERT_TRUE(p1.ok() && p2.ok());
  std::string garbage(kPageSize, 'X');
  pool_->Write(pool_->PageAddress(*p1), garbage.data(), garbage.size());
  pool_->Write(pool_->PageAddress(*p2), garbage.data(), garbage.size());
  leases.RecyclePage(*p1);
  leases.RecyclePage(*p2);

  // RecyclePage files by the page's REAL node into this thread's shard, so the next
  // allocation returns the most recently recycled page (LIFO bookkeeping proof).
  Result<PageNumber> again = leases.AllocPage(0);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(*again, *p2);
  leases.RecyclePage(*again);

  Result<Fd> fd = fs_->Open("/partial", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  const std::string tail(4, 'T');
  ASSERT_TRUE(fs_->Pwrite(*fd, tail.data(), tail.size(), kPageSize - 4).ok());

  // The recycled pages really were reused for this file's chain.
  DirentBlock* dirent = FindDirent("partial");
  ASSERT_NE(dirent, nullptr);
  PageNumber data_page = 0;
  TRIO_CHECK_OK(ForEachDataEntry(*pool_, dirent->first_index_page,
                                 [&](uint64_t, uint64_t entry) -> Status {
                                   data_page = static_cast<PageNumber>(entry);
                                   return OkStatus();
                                 }));
  EXPECT_TRUE(data_page == *p1 || data_page == *p2) << "data page " << data_page;

  std::vector<char> buffer(kPageSize);
  Result<size_t> n = fs_->Pread(*fd, buffer.data(), buffer.size(), 0);
  ASSERT_TRUE(n.ok());
  ASSERT_EQ(*n, kPageSize);
  for (size_t i = 0; i < kPageSize - 4; ++i) {
    ASSERT_EQ(buffer[i], 0) << "stale byte leaked at offset " << i;
  }
  EXPECT_EQ(buffer[kPageSize - 1], 'T');
  ASSERT_TRUE(fs_->Close(*fd).ok());
}

}  // namespace
}  // namespace trio
