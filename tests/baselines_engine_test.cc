// Unit tests for the baseline substrate: the SimpleKernelFs engine (inode-number API),
// the VfsSim lock/trap model, journal-mode differentiation, and the SplitFS/Strata
// specific behaviours (direct data path, log + digestion).

#include <gtest/gtest.h>

#include <memory>

#include "src/baselines/baselines.h"
#include "src/baselines/fs_factory.h"

namespace trio {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : pool_(4096) {
    options_.max_inodes = 512;
    options_.journal_mode = JournalMode::kGlobalJournal;
    TRIO_CHECK_OK(SimpleKernelFs::Format(pool_, options_));
    engine_ = std::make_unique<SimpleKernelFs>(pool_, options_);
  }

  NvmPool pool_;
  KernelFsOptions options_;
  std::unique_ptr<SimpleKernelFs> engine_;
};

TEST_F(EngineTest, CreateLookupRoundTrip) {
  Result<Ino> ino = engine_->Create(SimpleKernelFs::kKRootIno, "file", kModeRegular | 0644);
  ASSERT_TRUE(ino.ok());
  Result<Ino> found = engine_->Lookup(SimpleKernelFs::kKRootIno, "file");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, *ino);
  EXPECT_TRUE(engine_->Lookup(SimpleKernelFs::kKRootIno, "nope").status().Is(
      ErrorCode::kNotFound));
}

TEST_F(EngineTest, DuplicateCreateRejected) {
  ASSERT_TRUE(engine_->Create(SimpleKernelFs::kKRootIno, "x", kModeRegular | 0644).ok());
  EXPECT_TRUE(engine_->Create(SimpleKernelFs::kKRootIno, "x", kModeRegular | 0644)
                  .status()
                  .Is(ErrorCode::kExists));
}

TEST_F(EngineTest, WriteReadAcrossIndirectBlocks) {
  Result<Ino> ino = engine_->Create(SimpleKernelFs::kKRootIno, "big", kModeRegular | 0644);
  ASSERT_TRUE(ino.ok());
  // Beyond the 10 direct blocks (40 KiB) into the indirect range.
  const std::string data(64 * 1024 + 123, 'i');
  ASSERT_TRUE(engine_->Write(*ino, data.data(), data.size(), 0).ok());
  std::string out(data.size(), '\0');
  Result<size_t> n = engine_->Read(*ino, out.data(), out.size(), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
  // Double-indirect range: write one block far out.
  const uint64_t far = (SimpleKernelFs::kDirectBlocks + SimpleKernelFs::kPointersPerBlock +
                        5) *
                       kPageSize;
  ASSERT_TRUE(engine_->Write(*ino, "deep", 4, far).ok());
  char buf[4];
  ASSERT_TRUE(engine_->Read(*ino, buf, 4, far).ok());
  EXPECT_EQ(std::string(buf, 4), "deep");
}

TEST_F(EngineTest, RemoveFreesAndRejectsNonEmptyDirs) {
  Result<Ino> dir = engine_->Create(SimpleKernelFs::kKRootIno, "d", kModeDirectory | 0755);
  ASSERT_TRUE(dir.ok());
  ASSERT_TRUE(engine_->Create(*dir, "child", kModeRegular | 0644).ok());
  EXPECT_TRUE(engine_->Remove(SimpleKernelFs::kKRootIno, "d", /*must_be_dir=*/true)
                  .Is(ErrorCode::kNotEmpty));
  ASSERT_TRUE(engine_->Remove(*dir, "child", false).ok());
  EXPECT_TRUE(engine_->Remove(SimpleKernelFs::kKRootIno, "d", true).ok());
  EXPECT_TRUE(engine_->Lookup(SimpleKernelFs::kKRootIno, "d").status().Is(
      ErrorCode::kNotFound));
}

TEST_F(EngineTest, RenameMovesAndOverwrites) {
  Result<Ino> a = engine_->Create(SimpleKernelFs::kKRootIno, "a", kModeRegular | 0644);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(engine_->Write(*a, "AAA", 3, 0).ok());
  Result<Ino> b = engine_->Create(SimpleKernelFs::kKRootIno, "b", kModeRegular | 0644);
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(engine_->Rename(SimpleKernelFs::kKRootIno, "a", SimpleKernelFs::kKRootIno,
                              "b")
                  .ok());
  Result<Ino> now = engine_->Lookup(SimpleKernelFs::kKRootIno, "b");
  ASSERT_TRUE(now.ok());
  EXPECT_EQ(*now, *a);
  EXPECT_TRUE(engine_->Lookup(SimpleKernelFs::kKRootIno, "a").status().Is(
      ErrorCode::kNotFound));
}

TEST_F(EngineTest, JournalBytesAccumulateInJournaledModes) {
  ASSERT_TRUE(engine_->Create(SimpleKernelFs::kKRootIno, "j", kModeRegular | 0644).ok());
  EXPECT_GT(engine_->journal_bytes(), 0u);

  // PMFS mode: no journal traffic.
  NvmPool pmfs_pool(1024);
  KernelFsOptions pmfs_options;
  pmfs_options.max_inodes = 128;
  pmfs_options.journal_mode = JournalMode::kNone;
  TRIO_CHECK_OK(SimpleKernelFs::Format(pmfs_pool, pmfs_options));
  SimpleKernelFs pmfs(pmfs_pool, pmfs_options);
  ASSERT_TRUE(pmfs.Create(SimpleKernelFs::kKRootIno, "j", kModeRegular | 0644).ok());
  EXPECT_EQ(pmfs.journal_bytes(), 0u);
}

TEST(VfsSimTest, TrapsAreCounted) {
  VfsSim vfs;
  EXPECT_EQ(vfs.traps(), 0u);
  vfs.Trap();
  vfs.Trap();
  EXPECT_EQ(vfs.traps(), 2u);
}

TEST(VfsSimTest, AdapterTrapsPerSyscall) {
  FsInstance instance = MakeFs("NOVA");
  auto* adapter = static_cast<KernelFsAdapter*>(instance.fs.get());
  const uint64_t before = adapter->vfs().traps();
  Result<Fd> fd = instance.fs->Open("/t", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  char byte = 'x';
  ASSERT_TRUE(instance.fs->Pwrite(*fd, &byte, 1, 0).ok());
  ASSERT_TRUE(instance.fs->Close(*fd).ok());
  // open + pwrite + close = at least 3 crossings (the point ArckFS avoids).
  EXPECT_GE(adapter->vfs().traps() - before, 3u);
}

TEST(SplitFsTest, DataOpsBypassTheKernel) {
  FsInstance instance = MakeFs("SplitFS");
  auto* splitfs = static_cast<SplitFsLike*>(instance.fs.get());
  Result<Fd> fd = instance.fs->Open("/s", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  std::string data(8192, 's');
  ASSERT_TRUE(instance.fs->Pwrite(*fd, data.data(), data.size(), 0).ok());

  const uint64_t traps_before = splitfs->vfs().traps();
  const uint64_t direct_before = splitfs->direct_data_ops();
  char buf[4096];
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(instance.fs->Pread(*fd, buf, sizeof(buf), 0).ok());
    ASSERT_TRUE(instance.fs->Pwrite(*fd, buf, sizeof(buf), 0).ok());  // Overwrite: direct.
  }
  EXPECT_EQ(splitfs->vfs().traps(), traps_before);          // No kernel crossings.
  EXPECT_EQ(splitfs->direct_data_ops() - direct_before, 100u);
  ASSERT_TRUE(instance.fs->Close(*fd).ok());
}

TEST(StrataTest, WritesRideTheLogUntilDigestion) {
  FsInstance instance = MakeFs("Strata");
  auto* strata = static_cast<StrataLike*>(instance.fs.get());
  Result<Fd> fd = instance.fs->Open("/log", OpenFlags::CreateRw());
  ASSERT_TRUE(fd.ok());
  std::string data(1000, 'd');
  ASSERT_TRUE(instance.fs->Pwrite(*fd, data.data(), data.size(), 0).ok());
  EXPECT_GT(strata->log_bytes_written(), 1000u);  // Data + record headers.

  // Reads force read-your-writes via digestion.
  std::string out(1000, '\0');
  Result<size_t> n = instance.fs->Pread(*fd, out.data(), out.size(), 0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(out, data);
  EXPECT_GT(strata->digests(), 0u);
  ASSERT_TRUE(instance.fs->Close(*fd).ok());
}

}  // namespace
}  // namespace trio
