// Tests for minildb: skiplist, bloom filter, SSTables, the LSM DB (flush, compaction,
// WAL recovery) — run over ArckFS, plus an interop check over a baseline FS.

#include <gtest/gtest.h>

#include <set>

#include "src/baselines/fs_factory.h"
#include "src/minildb/bloom.h"
#include "src/minildb/db.h"
#include "src/minildb/db_bench.h"
#include "src/minildb/skiplist.h"
#include "src/minildb/sstable.h"

namespace trio {
namespace {

TEST(SkipListTest, InsertLookupOverwrite) {
  SkipList list;
  EXPECT_GT(list.Insert("b", "2"), 0u);
  EXPECT_GT(list.Insert("a", "1"), 0u);
  EXPECT_EQ(list.Insert("a", "one"), 0u);  // Overwrite.
  std::string value;
  ASSERT_TRUE(list.Lookup("a", &value));
  EXPECT_EQ(value, "one");
  EXPECT_FALSE(list.Lookup("c", &value));
  EXPECT_EQ(list.Size(), 2u);
}

TEST(SkipListTest, OrderedTraversal) {
  SkipList list;
  for (int i = 100; i > 0; --i) {
    list.Insert("k" + std::to_string(1000 + i), std::to_string(i));
  }
  std::string last;
  int visits = 0;
  list.ForEach([&](const std::string& key, const std::string&) {
    EXPECT_LT(last, key);
    last = key;
    ++visits;
  });
  EXPECT_EQ(visits, 100);
}

TEST(BloomTest, NoFalseNegatives) {
  std::vector<std::string> keys;
  for (int i = 0; i < 500; ++i) {
    keys.push_back("key" + std::to_string(i));
  }
  const std::string filter = BloomFilter::Build(keys);
  for (const std::string& key : keys) {
    EXPECT_TRUE(BloomFilter::MayContain(filter, key));
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  std::vector<std::string> keys;
  for (int i = 0; i < 1000; ++i) {
    keys.push_back("present" + std::to_string(i));
  }
  const std::string filter = BloomFilter::Build(keys);
  int false_positives = 0;
  for (int i = 0; i < 1000; ++i) {
    false_positives += BloomFilter::MayContain(filter, "absent" + std::to_string(i));
  }
  EXPECT_LT(false_positives, 30);  // ~1% expected at 10 bits/key.
}

class MiniDbTest : public ::testing::Test {
 protected:
  MiniDbTest() : instance_(MakeFs("ArckFS")) {}
  FsInterface& fs() { return *instance_.fs; }
  FsInstance instance_;
};

TEST_F(MiniDbTest, SsTableRoundTrip) {
  std::vector<TableEntry> entries;
  for (int i = 0; i < 1000; ++i) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    entries.push_back(TableEntry{key, "value" + std::to_string(i), i % 7 == 0});
  }
  ASSERT_TRUE(SsTableWriter::WriteTable(fs(), "/table", entries).ok());
  Result<std::unique_ptr<SsTableReader>> reader = SsTableReader::Open(fs(), "/table");
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ((*reader)->entry_count(), 1000u);
  EXPECT_EQ((*reader)->smallest(), "k000000");
  EXPECT_EQ((*reader)->largest(), "k000999");

  for (int i = 0; i < 1000; i += 37) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    Result<TableEntry> entry = (*reader)->Get(key);
    ASSERT_TRUE(entry.ok()) << key;
    EXPECT_EQ(entry->deleted, i % 7 == 0);
    if (!entry->deleted) {
      EXPECT_EQ(entry->value, "value" + std::to_string(i));
    }
  }
  EXPECT_TRUE((*reader)->Get("nope").status().Is(ErrorCode::kNotFound));

  size_t streamed = 0;
  ASSERT_TRUE((*reader)
                  ->ForEach([&](const TableEntry&) -> Status {
                    ++streamed;
                    return OkStatus();
                  })
                  .ok());
  EXPECT_EQ(streamed, 1000u);
}

TEST_F(MiniDbTest, PutGetDelete) {
  MiniDbOptions options;
  Result<std::unique_ptr<MiniDb>> db = MiniDb::Open(fs(), options);
  ASSERT_TRUE(db.ok()) << db.status().ToString();
  ASSERT_TRUE((*db)->Put("apple", "red").ok());
  ASSERT_TRUE((*db)->Put("banana", "yellow").ok());
  EXPECT_EQ(*(*db)->Get("apple"), "red");
  ASSERT_TRUE((*db)->Delete("apple").ok());
  EXPECT_TRUE((*db)->Get("apple").status().Is(ErrorCode::kNotFound));
  EXPECT_EQ(*(*db)->Get("banana"), "yellow");
}

TEST_F(MiniDbTest, FlushAndReadFromTables) {
  MiniDbOptions options;
  options.memtable_bytes = 16 << 10;  // Flush often.
  Result<std::unique_ptr<MiniDb>> db = MiniDb::Open(fs(), options);
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE((*db)->Put("key" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  EXPECT_GT((*db)->stats().flushes, 0u);
  for (int i = 0; i < 2000; i += 53) {
    Result<std::string> value = (*db)->Get("key" + std::to_string(i));
    ASSERT_TRUE(value.ok()) << i << ": " << value.status().ToString();
    EXPECT_EQ(*value, "v" + std::to_string(i));
  }
}

TEST_F(MiniDbTest, CompactionKeepsNewestAndDropsTombstones) {
  MiniDbOptions options;
  options.memtable_bytes = 8 << 10;
  options.l0_compaction_trigger = 3;
  Result<std::unique_ptr<MiniDb>> db = MiniDb::Open(fs(), options);
  ASSERT_TRUE(db.ok());
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 200; ++i) {
      ASSERT_TRUE(
          (*db)->Put("key" + std::to_string(i), "round" + std::to_string(round)).ok());
    }
    for (int i = 0; i < 200; i += 10) {
      ASSERT_TRUE((*db)->Delete("key" + std::to_string(i)).ok());
    }
  }
  ASSERT_TRUE((*db)->Flush().ok());
  EXPECT_GT((*db)->stats().compactions, 0u);
  for (int i = 1; i < 200; i += 7) {
    if (i % 10 == 0) {
      continue;
    }
    Result<std::string> value = (*db)->Get("key" + std::to_string(i));
    ASSERT_TRUE(value.ok()) << i;
    EXPECT_EQ(*value, "round5");
  }
  EXPECT_TRUE((*db)->Get("key0").status().Is(ErrorCode::kNotFound));
  EXPECT_TRUE((*db)->Get("key10").status().Is(ErrorCode::kNotFound));
}

TEST_F(MiniDbTest, WalRecoveryAfterReopen) {
  {
    Result<std::unique_ptr<MiniDb>> db = MiniDb::Open(fs(), MiniDbOptions{});
    ASSERT_TRUE(db.ok());
    ASSERT_TRUE((*db)->Put("durable", "yes").ok());
    ASSERT_TRUE((*db)->Put("other", "data").ok());
    ASSERT_TRUE((*db)->Delete("other").ok());
    // No flush: everything lives in the WAL. Drop the DB object ("crash").
  }
  Result<std::unique_ptr<MiniDb>> reopened = MiniDb::Open(fs(), MiniDbOptions{});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(*(*reopened)->Get("durable"), "yes");
  EXPECT_TRUE((*reopened)->Get("other").status().Is(ErrorCode::kNotFound));
}

TEST_F(MiniDbTest, DbBenchWorkloadsRun) {
  for (DbBenchWorkload workload :
       {DbBenchWorkload::kFillSeq, DbBenchWorkload::kFillRandom,
        DbBenchWorkload::kReadRandom, DbBenchWorkload::kDeleteRandom}) {
    FsInstance fresh = MakeFs("ArckFS");
    Result<DbBenchResult> result = RunDbBench(*fresh.fs, workload, 500);
    ASSERT_TRUE(result.ok()) << DbBenchName(workload) << ": "
                             << result.status().ToString();
    EXPECT_EQ(result->ops, 500u);
  }
}

TEST(MiniDbInterop, RunsOverBaselineFs) {
  FsInstance instance = MakeFs("NOVA");
  Result<std::unique_ptr<MiniDb>> db = MiniDb::Open(*instance.fs, MiniDbOptions{});
  ASSERT_TRUE(db.ok());
  for (int i = 0; i < 300; ++i) {
    ASSERT_TRUE((*db)->Put("k" + std::to_string(i), "v" + std::to_string(i)).ok());
  }
  ASSERT_TRUE((*db)->Flush().ok());
  EXPECT_EQ(*(*db)->Get("k7"), "v7");
}

}  // namespace
}  // namespace trio
