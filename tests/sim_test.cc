// Tests of the analytic performance model: the machine curves, the solver's caps, and —
// most importantly — the qualitative relationships the paper reports, which the benches
// rely on (who wins, where scaling saturates, where Optane collapses).

#include <gtest/gtest.h>

#include "src/sim/machine.h"
#include "src/sim/model.h"
#include "src/sim/profiles.h"

namespace trio {
namespace sim {
namespace {

MachineModel Machine() { return MachineModel{}; }

double Tput(const std::string& fs, const OpProfile& op, int threads, int machine_nodes) {
  SolveInput input;
  input.op = op;
  input.threads = threads;
  input.nodes = NodesUsed(fs, machine_nodes);
  return Solve(Machine(), input).ops_per_sec;
}

double DataGiBps(const std::string& fs, double bytes, bool read, int threads, int nodes) {
  SolveInput input;
  input.op = DataOp(fs, bytes, read);
  input.threads = threads;
  input.nodes = NodesUsed(fs, nodes);
  return Solve(Machine(), input).data_gib_per_sec;
}

TEST(MachineModelTest, ReadBandwidthRampsAndHolds) {
  MachineModel m;
  EXPECT_LT(m.NodeReadBw(1), m.NodeReadBw(8));
  EXPECT_GT(m.NodeReadBw(8), 25.0);
  // Reads degrade gently, not collapse.
  EXPECT_GT(m.NodeReadBw(56), 0.6 * m.NodeReadBw(8));
}

TEST(MachineModelTest, WriteBandwidthCollapses) {
  MachineModel m;
  const double peak = m.NodeWriteBw(6);
  EXPECT_GT(peak, 9.0);
  // §4.5: excessive concurrent access degrades Optane writes badly.
  EXPECT_LT(m.NodeWriteBw(28), 0.5 * peak);
  EXPECT_LT(m.NodeWriteBw(100), 0.35 * peak);
}

TEST(SolverTest, LatencyBoundScalesWithThreads) {
  OpProfile op;
  op.cpu_us = 1.0;
  SolveInput input{op, 1, 1};
  const double t1 = Solve(Machine(), input).ops_per_sec;
  input.threads = 8;
  const double t8 = Solve(Machine(), input).ops_per_sec;
  EXPECT_NEAR(t8 / t1, 8.0, 0.01);
}

TEST(SolverTest, GlobalSerialCapsThroughput) {
  OpProfile op;
  op.cpu_us = 1.0;
  op.global_serial_us = 2.0;
  SolveInput input{op, 100, 1};
  const double t = Solve(Machine(), input).ops_per_sec;
  EXPECT_NEAR(t, 5e5, 1);  // 1 / 2us.
  EXPECT_STREQ(Solve(Machine(), input).bound, "global-serial");
}

TEST(SolverTest, SelfCapApplies) {
  OpProfile op;
  op.cpu_us = 0.1;
  op.self_cap_ops_per_us = 4.0;
  SolveInput input{op, 224, 8};
  EXPECT_NEAR(Solve(Machine(), input).ops_per_sec, 4e6, 1);
}

// ---- Paper-shape assertions ----

TEST(PaperShapeTest, Fig5SingleThreadCreateRatios) {
  // "for open, create, delete ArckFS outperforms others by 1.6x-5.6x, 3.3x-5.3x, and
  // 7.4x-9.4x" (§6.2).
  const double arck = Tput("ArckFS", MetaOp("ArckFS", MetaKind::kCreate, false), 1, 1);
  for (const char* other : {"ext4", "NOVA", "Strata"}) {
    const double t = Tput(other, MetaOp(other, MetaKind::kCreate, false), 1, 1);
    EXPECT_GT(arck / t, 2.8) << other;
    EXPECT_LT(arck / t, 7.0) << other;
  }
  const double arck_del = Tput("ArckFS", MetaOp("ArckFS", MetaKind::kUnlink, false), 1, 1);
  for (const char* other : {"NOVA", "Strata"}) {
    const double t = Tput(other, MetaOp(other, MetaKind::kUnlink, false), 1, 1);
    EXPECT_GT(arck_del / t, 6.0) << other;
    EXPECT_LT(arck_del / t, 11.0) << other;
  }
}

TEST(PaperShapeTest, Fig5SmallDataDirectAccessWins) {
  // 4KB: direct-access systems beat NOVA by ~9-31%; delegated ArckFS is slightly slower
  // than ArckFS-nd but still above NOVA (§6.2).
  const double nova = DataGiBps("NOVA", 4096, false, 1, 1);
  const double arck_nd = DataGiBps("ArckFS-nd", 4096, false, 1, 1);
  const double arck = DataGiBps("ArckFS", 4096, false, 1, 1);
  const double splitfs = DataGiBps("SplitFS", 4096, false, 1, 1);
  EXPECT_GT(arck_nd, nova * 1.05);
  EXPECT_LT(arck_nd, nova * 1.45);
  EXPECT_GT(splitfs, nova);
  EXPECT_GT(arck, nova);
  EXPECT_LT(arck, arck_nd);  // Delegation overhead on small ops.
}

TEST(PaperShapeTest, Fig5BulkDataParallelizationWins) {
  // 2MB: ArckFS/OdinFS parallelize across nodes; 3.1x-25x over the rest (§6.2).
  const double nova = DataGiBps("NOVA", 2 << 20, true, 1, 8);
  const double arck = DataGiBps("ArckFS", 2 << 20, true, 1, 8);
  const double odin = DataGiBps("OdinFS", 2 << 20, true, 1, 8);
  EXPECT_GT(arck / nova, 3.0);
  EXPECT_GT(odin / nova, 2.0);
  EXPECT_GE(arck, odin);
}

TEST(PaperShapeTest, Fig6WriteCollapseWithoutDelegation) {
  // Single node, 4KB writes: throughput peaks at a few threads then drops (Fig. 6b).
  const double at4 = DataGiBps("NOVA", 4096, false, 4, 1);
  const double at8 = DataGiBps("NOVA", 4096, false, 8, 1);
  const double at28 = DataGiBps("NOVA", 4096, false, 28, 1);
  EXPECT_GT(at8, at4 * 0.8);
  EXPECT_LT(at28, std::max(at8, at4));
}

TEST(PaperShapeTest, Fig6DelegationPreservesScaling) {
  // Eight nodes, 224 threads: ArckFS sustains; others collapse (up to 22x, §6.3).
  const double arck = DataGiBps("ArckFS", 4096, false, 224, 8);
  const double nova = DataGiBps("NOVA", 4096, false, 224, 8);
  const double odin = DataGiBps("OdinFS", 4096, false, 224, 8);
  EXPECT_GT(arck / nova, 8.0);
  EXPECT_GE(arck, odin * 0.99);
  EXPECT_LT(arck, odin * 1.6);  // "outperforms OdinFS by up to 1.3x".
}

TEST(PaperShapeTest, Fig6BulkReadsSaturateAggregateBandwidth) {
  const double arck224 = DataGiBps("ArckFS", 2 << 20, true, 224, 8);
  EXPECT_GT(arck224, 120.0);  // Fig. 6g tops out ~200 GiB/s.
  EXPECT_LT(arck224, 280.0);
  const double nova224 = DataGiBps("NOVA", 2 << 20, true, 224, 8);
  EXPECT_GT(arck224 / nova224, 5.0);
}

TEST(PaperShapeTest, Fig7PrivateOpensScaleForEveryone_SharedOnlyForArckFs) {
  // "most other file systems can only scale MRPL and MRDL" (§6.4).
  const double nova_private =
      Tput("NOVA", MetaOp("NOVA", MetaKind::kOpen, false), 224, 8);
  const double nova_1 = Tput("NOVA", MetaOp("NOVA", MetaKind::kOpen, false), 1, 8);
  EXPECT_GT(nova_private / nova_1, 50.0);  // Scales.

  const double nova_shared = Tput("NOVA", MetaOp("NOVA", MetaKind::kOpen, true), 224, 8);
  const double arck_shared =
      Tput("ArckFS", MetaOp("ArckFS", MetaKind::kOpen, true), 224, 8);
  EXPECT_GT(arck_shared / nova_shared, 5.0);  // "5.4x to 334x" for opens at 224.
}

TEST(PaperShapeTest, Fig7CreateSaturatesForArckFsAndSerializesForOthers) {
  const double arck1 = Tput("ArckFS", MetaOp("ArckFS", MetaKind::kCreate, false), 1, 8);
  const double arck224 =
      Tput("ArckFS", MetaOp("ArckFS", MetaKind::kCreate, false), 224, 8);
  EXPECT_GT(arck224, arck1);               // Grows...
  EXPECT_LT(arck224, 4.5e6);               // ...but saturates ~4 ops/us (Fig. 7 MWCL).
  const double ext4_224 = Tput("ext4", MetaOp("ext4", MetaKind::kCreate, false), 224, 8);
  EXPECT_GT(arck224 / ext4_224, 2.0);      // "2.3x to 21.2x" for creates at 224.
  EXPECT_LT(arck224 / ext4_224, 25.0);
}

TEST(PaperShapeTest, Fig7TruncateScalesLinearly) {
  const double arck1 = Tput("ArckFS", MetaOp("ArckFS", MetaKind::kTruncate, false), 1, 8);
  const double arck224 =
      Tput("ArckFS", MetaOp("ArckFS", MetaKind::kTruncate, false), 224, 8);
  EXPECT_GT(arck224 / arck1, 150.0);  // DWTL: linear to 224 (Fig. 7).
}

TEST(PaperShapeTest, CustomizationsBeatArckFsOnTheirWorkloads) {
  // KVFS on small-file access and FPFS on deep paths outperform ArckFS (~1.2-1.3x, §6.6).
  const double arck_open = Tput("ArckFS", MetaOp("ArckFS", MetaKind::kOpen, false), 8, 8);
  const double fpfs_open = Tput("FPFS", MetaOp("FPFS", MetaKind::kOpen, false), 8, 8);
  EXPECT_GT(fpfs_open / arck_open, 1.15);

  const double arck_small = Tput("ArckFS", DataOp("ArckFS", 4096, true), 8, 8);
  const double kvfs_small = Tput("KVFS", DataOp("KVFS", 4096, true), 8, 8);
  EXPECT_GT(kvfs_small / arck_small, 1.05);
}

}  // namespace
}  // namespace sim
}  // namespace trio
