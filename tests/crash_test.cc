// Crash-consistency tests (§4.4): metadata operations must be synchronous and atomic,
// data operations synchronous. The NvmPool's fence recorder enumerates every persistence
// point; each one is materialized into a fresh pool, remounted, recovered (journal undo +
// write-map verification), and checked — a Chipmunk-style sweep over all crash points.

#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <memory>
#include <string>

#include "src/common/random.h"
#include "src/kernel/controller.h"
#include "src/libfs/arckfs.h"
#include "tests/test_seed.h"

namespace trio {
namespace {

constexpr size_t kPoolPages = 2048;

struct RemountedFs {
  std::unique_ptr<NvmPool> pool;
  std::unique_ptr<KernelController> kernel;
  std::unique_ptr<ArckFs> fs;
};

// Boots a file system from a raw pool image, running full crash recovery.
RemountedFs RemountFromImage(const std::vector<char>& image,
                             const std::vector<PageNumber>& journal_pages) {
  RemountedFs out;
  out.pool = std::make_unique<NvmPool>(kPoolPages, NvmMode::kFast);
  out.pool->LoadImage(image.data());
  out.kernel = std::make_unique<KernelController>(*out.pool);
  TRIO_CHECK_OK(out.kernel->Mount());
  ArckFsConfig config;
  config.recover_journal_pages = journal_pages;
  out.fs = std::make_unique<ArckFs>(*out.kernel, config);
  if (out.kernel->NeedsRecovery()) {
    TRIO_CHECK_OK(out.kernel->RunRecovery());
  }
  return out;
}

class CrashTest : public ::testing::Test {
 protected:
  CrashTest() : pool_(kPoolPages, NvmMode::kTracking) {
    FormatOptions options;
    options.max_inodes = 1024;
    TRIO_CHECK_OK(Format(pool_, options));
    kernel_ = std::make_unique<KernelController>(pool_);
    TRIO_CHECK_OK(kernel_->Mount());
    fs_ = std::make_unique<ArckFs>(*kernel_);
  }

  void WriteFile(const std::string& path, const std::string& data) {
    Result<Fd> fd = fs_->Open(path, OpenFlags::CreateTrunc());
    TRIO_CHECK(fd.ok()) << fd.status().ToString();
    TRIO_CHECK(fs_->Pwrite(*fd, data.data(), data.size(), 0).ok());
    TRIO_CHECK_OK(fs_->Close(*fd));
  }

  // Runs `mutation`, then re-validates the persisted image at every fence point with
  // `check(fs, fence_index)`.
  void SweepCrashPoints(const std::function<void()>& mutation,
                        const std::function<void(ArckFs&, size_t)>& check,
                        size_t stride = 1) {
    pool_.StartFenceRecording();
    mutation();
    pool_.StopFenceRecording();
    const size_t fences = pool_.RecordedFenceCount();
    ASSERT_GT(fences, 0u);
    const std::vector<PageNumber> journal_pages = fs_->JournalPages();
    std::vector<char> image(kPoolPages * kPageSize);
    for (size_t k = 0; k <= fences; k += stride) {
      pool_.MaterializeAt(k, image.data());
      RemountedFs booted = RemountFromImage(image, journal_pages);
      check(*booted.fs, k);
    }
  }

  NvmPool pool_;
  std::unique_ptr<KernelController> kernel_;
  std::unique_ptr<ArckFs> fs_;
};

TEST_F(CrashTest, CreateIsAtomicAtEveryFencePoint) {
  SweepCrashPoints(
      [&] { WriteFile("/f", "hello"); },
      [&](ArckFs& fs, size_t k) {
        Result<StatInfo> info = fs.Stat("/f");
        if (!info.ok()) {
          EXPECT_TRUE(info.status().Is(ErrorCode::kNotFound)) << "fence " << k;
          return;
        }
        // Never a half-created dirent: the name and type are always intact.
        EXPECT_TRUE(info->IsRegular()) << "fence " << k;
        EXPECT_TRUE(info->size == 0 || info->size == 5) << "fence " << k;
        if (info->size == 5) {
          Result<Fd> fd = fs.Open("/f", OpenFlags::ReadOnly());
          ASSERT_TRUE(fd.ok());
          char buf[5];
          ASSERT_TRUE(fs.Pread(*fd, buf, 5, 0).ok());
          EXPECT_EQ(std::string(buf, 5), "hello") << "fence " << k;
          ASSERT_TRUE(fs.Close(*fd).ok());
        }
      });
}

TEST_F(CrashTest, MkdirIsAtomicAtEveryFencePoint) {
  SweepCrashPoints(
      [&] { TRIO_CHECK_OK(fs_->Mkdir("/d")); },
      [&](ArckFs& fs, size_t k) {
        Result<StatInfo> info = fs.Stat("/d");
        if (info.ok()) {
          EXPECT_TRUE(info->IsDirectory()) << "fence " << k;
          Result<std::vector<DirEntryInfo>> entries = fs.ReadDir("/d");
          ASSERT_TRUE(entries.ok()) << "fence " << k;
          EXPECT_TRUE(entries->empty());
        } else {
          EXPECT_TRUE(info.status().Is(ErrorCode::kNotFound)) << "fence " << k;
        }
      });
}

TEST_F(CrashTest, UnlinkIsAtomicAtEveryFencePoint) {
  WriteFile("/gone", "bye");
  SweepCrashPoints(
      [&] { TRIO_CHECK_OK(fs_->Unlink("/gone")); },
      [&](ArckFs& fs, size_t k) {
        Result<StatInfo> info = fs.Stat("/gone");
        if (info.ok()) {
          // Still fully there.
          EXPECT_EQ(info->size, 3u) << "fence " << k;
        } else {
          EXPECT_TRUE(info.status().Is(ErrorCode::kNotFound)) << "fence " << k;
        }
      });
}

TEST_F(CrashTest, AppendNeverExposesGarbageSize) {
  WriteFile("/log", "0123");
  SweepCrashPoints(
      [&] {
        Result<Fd> fd = fs_->Open("/log", OpenFlags::ReadWrite());
        TRIO_CHECK(fd.ok());
        TRIO_CHECK(fs_->Pwrite(*fd, "4567", 4, 4).ok());
        TRIO_CHECK_OK(fs_->Close(*fd));
      },
      [&](ArckFs& fs, size_t k) {
        Result<StatInfo> info = fs.Stat("/log");
        ASSERT_TRUE(info.ok()) << "fence " << k;
        ASSERT_TRUE(info->size == 4 || info->size == 8) << "fence " << k;
        Result<Fd> fd = fs.Open("/log", OpenFlags::ReadOnly());
        ASSERT_TRUE(fd.ok());
        char buf[8];
        Result<size_t> n = fs.Pread(*fd, buf, 8, 0);
        ASSERT_TRUE(n.ok());
        EXPECT_EQ(*n, info->size);
        // The size commit happens after the data is durable: visible bytes are real.
        EXPECT_EQ(std::string(buf, *n), std::string("01234567").substr(0, *n))
            << "fence " << k;
        ASSERT_TRUE(fs.Close(*fd).ok());
      });
}

TEST_F(CrashTest, RenameExactlyOneNameAtEveryFencePoint) {
  WriteFile("/a", "payload");
  SweepCrashPoints(
      [&] { TRIO_CHECK_OK(fs_->Rename("/a", "/b")); },
      [&](ArckFs& fs, size_t k) {
        const bool a = fs.Stat("/a").ok();
        const bool b = fs.Stat("/b").ok();
        EXPECT_TRUE(a != b) << "fence " << k << ": a=" << a << " b=" << b;
        const std::string alive = a ? "/a" : "/b";
        Result<Fd> fd = fs.Open(alive, OpenFlags::ReadOnly());
        ASSERT_TRUE(fd.ok());
        char buf[7];
        ASSERT_TRUE(fs.Pread(*fd, buf, 7, 0).ok());
        EXPECT_EQ(std::string(buf, 7), "payload") << "fence " << k;
        ASSERT_TRUE(fs.Close(*fd).ok());
      });
}

TEST_F(CrashTest, RenameOverwriteKeepsExactlyOneTarget) {
  WriteFile("/src", "SRC");
  WriteFile("/dst", "DST");
  SweepCrashPoints(
      [&] { TRIO_CHECK_OK(fs_->Rename("/src", "/dst")); },
      [&](ArckFs& fs, size_t k) {
        Result<StatInfo> dst = fs.Stat("/dst");
        ASSERT_TRUE(dst.ok()) << "fence " << k;  // The target name never disappears.
        Result<Fd> fd = fs.Open("/dst", OpenFlags::ReadOnly());
        ASSERT_TRUE(fd.ok());
        char buf[3];
        ASSERT_TRUE(fs.Pread(*fd, buf, 3, 0).ok());
        const std::string content(buf, 3);
        EXPECT_TRUE(content == "SRC" || content == "DST") << "fence " << k;
        const bool src_exists = fs.Stat("/src").ok();
        if (content == "DST") {
          EXPECT_TRUE(src_exists) << "fence " << k;  // Not yet moved => src intact.
        } else {
          EXPECT_FALSE(src_exists) << "fence " << k;  // Moved => src gone.
        }
        ASSERT_TRUE(fs.Close(*fd).ok());
      });
}

TEST_F(CrashTest, TruncateShrinkAtomicSize) {
  WriteFile("/t", std::string(2 * kPageSize, 'x'));
  SweepCrashPoints(
      [&] { TRIO_CHECK_OK(fs_->Truncate("/t", 100)); },
      [&](ArckFs& fs, size_t k) {
        Result<StatInfo> info = fs.Stat("/t");
        ASSERT_TRUE(info.ok());
        EXPECT_TRUE(info->size == 100 || info->size == 2 * kPageSize) << "fence " << k;
      },
      /*stride=*/2);
}

TEST_F(CrashTest, RandomWorkloadAlwaysRemountsClean) {
  // Property: after a crash at any fence point of a mixed workload, the file system
  // mounts, recovers, and the whole tree walks without error.
  Rng rng(TestSeed());
  SweepCrashPoints(
      [&] {
        TRIO_CHECK_OK(fs_->Mkdir("/w"));
        for (int i = 0; i < 12; ++i) {
          const std::string path = "/w/f" + std::to_string(rng.Below(6));
          switch (rng.Below(4)) {
            case 0:
              WriteFile(path, std::string(rng.Range(1, 3000), 'r'));
              break;
            case 1:
              (void)fs_->Unlink(path);
              break;
            case 2:
              (void)fs_->Rename(path, "/w/f" + std::to_string(rng.Below(6)));
              break;
            default: {
              (void)fs_->Truncate(path, rng.Below(2000));
              break;
            }
          }
        }
      },
      [&](ArckFs& fs, size_t k) {
        Result<std::vector<DirEntryInfo>> root = fs.ReadDir("/");
        ASSERT_TRUE(root.ok()) << "fence " << k;
        Result<std::vector<DirEntryInfo>> entries = fs.ReadDir("/w");
        if (!entries.ok()) {
          EXPECT_TRUE(entries.status().Is(ErrorCode::kNotFound)) << "fence " << k;
          return;
        }
        for (const auto& entry : *entries) {
          Result<StatInfo> info = fs.Stat("/w/" + entry.name);
          ASSERT_TRUE(info.ok()) << "fence " << k << " " << entry.name;
          Result<Fd> fd = fs.Open("/w/" + entry.name, OpenFlags::ReadOnly());
          ASSERT_TRUE(fd.ok()) << "fence " << k;
          std::string buf(info->size, '\0');
          EXPECT_TRUE(fs.Pread(*fd, buf.data(), buf.size(), 0).ok()) << "fence " << k;
          ASSERT_TRUE(fs.Close(*fd).ok());
        }
      },
      /*stride=*/5);
}

TEST_F(CrashTest, CacheEvictionCannotBreakCommitOrdering) {
  // Spontaneous eviction may persist any *written* line early, but ArckFS only writes a
  // commit word after fencing its dependencies — so any eviction pattern yields a valid
  // state. Exercise many random eviction outcomes.
  WriteFile("/base", "stable");
  for (uint64_t iteration = 0; iteration < 12; ++iteration) {
    // Fresh mutation batch on the live fs.
    const std::string path = "/evict" + std::to_string(iteration);
    WriteFile(path, "abcdefgh");
    (void)fs_->Rename(path, path + "x");

    std::vector<char> image(kPoolPages * kPageSize);
    // Crash now, with a random subset of unflushed lines surviving. Seeded from
    // TestSeed() so a failing eviction pattern replays from the logged seed.
    const uint64_t seed = TestSeed() + iteration;
    Rng rng(seed);
    NvmPool scratch(kPoolPages, NvmMode::kFast);
    {
      // SimulateCrash mutates the tracking pool; work on a copy of both images via the
      // recorder-free path: persist what's persisted, evict randomly.
      pool_.SimulateCrash(&rng, 0.5);
      std::memcpy(image.data(), pool_.base(), image.size());
    }
    RemountedFs booted = RemountFromImage(image, fs_->JournalPages());
    EXPECT_TRUE(booted.fs->Stat("/base").ok()) << "seed " << seed;
    Result<std::vector<DirEntryInfo>> root = booted.fs->ReadDir("/");
    ASSERT_TRUE(root.ok()) << "seed " << seed;

    // The live fs lost its volatile view; rebuild it for the next iteration.
    fs_.reset();
    kernel_ = std::make_unique<KernelController>(pool_);
    TRIO_CHECK_OK(kernel_->Mount());
    TRIO_CHECK_OK(kernel_->RunRecovery());
    fs_ = std::make_unique<ArckFs>(*kernel_);
  }
}

}  // namespace
}  // namespace trio
