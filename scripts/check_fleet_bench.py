#!/usr/bin/env python3
"""CI gate for the sharded-controller fleet bench.

Reads a bench_fleet --benchmark_out JSON and checks the property the shard refactor
exists for: grant-lookup throughput with 8 shards + the lock-free fast path must beat
the legacy one-big-mutex configuration (shards:1, cache off) at the same thread count.
The comparison is a RATIO of two runs on the same machine in the same process, so it is
robust to absolute machine speed; the fast-path hit counters are additionally required
to be live so a silently-disabled cache cannot pass on lock-overhead noise alone.

Usage: check_fleet_bench.py <bench_fleet.json>
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        data = json.load(f)

    items = {}  # shards -> best items_per_second across thread counts
    fast_hits = 0.0
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if "GrantLookup" not in name or "items_per_second" not in bench:
            continue
        for token in name.split("/"):
            if token.startswith("shards:"):
                shards = int(token.split(":")[1])
                rate = bench["items_per_second"]
                items[shards] = max(items.get(shards, 0.0), rate)
                if shards > 1:
                    fast_hits = max(fast_hits, bench.get("fast_hits", 0.0))

    missing = [s for s in (1, 8) if s not in items]
    if missing:
        print(f"FAIL: no GrantLookup result for shards {missing} in {sys.argv[1]}")
        return 1

    legacy, sharded = items[1], items[8]
    if legacy <= 0 or sharded <= 0:
        print(f"FAIL: degenerate throughput (shards1={legacy}, shards8={sharded})")
        return 1
    if not sharded > legacy:
        print(f"FAIL: 8-shard lookup rate ({sharded:.0f}/s) not above the one-mutex "
              f"baseline ({legacy:.0f}/s) - shard scale-out is broken")
        return 1
    if fast_hits <= 0:
        print("FAIL: sharded run recorded zero grant_fast_hits - the lock-free "
              "fast path never engaged")
        return 1

    print(f"OK: grant lookups/s shards1={legacy:.0f} shards8={sharded:.0f} "
          f"({sharded / legacy:.2f}x), fast_hits={fast_hits:.0f}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
