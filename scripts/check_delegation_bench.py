#!/usr/bin/env python3
"""CI gate for the delegation-batching bench.

Reads a bench_delegation --benchmark_out JSON and checks the property batching exists
for: at the largest copy size (1 MiB), the batched data path (one ring push and one
fence per node per batch) must move bytes at least as fast as the pre-batch per-chunk
path (one Submit + one fence per 4 KiB chunk). Both numbers come from the SAME run on
the SAME runner, so the comparison is relative — absolute wall-clock is deliberately
not gated.

Usage: check_delegation_bench.py <bench_delegation.json>
"""

import json
import sys

GATED_BYTES = 1 << 20


def collect(data, prefix):
    """{threads: bytes_per_second} for `prefix` benchmarks at GATED_BYTES."""
    out = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if not name.startswith(prefix + "/") or "bytes_per_second" not in bench:
            continue
        tokens = {}
        for token in name.split("/"):
            if ":" in token:
                key, _, value = token.partition(":")
                tokens[key] = value
        if int(tokens.get("bytes", -1)) != GATED_BYTES:
            continue
        threads = int(tokens.get("threads", 1))
        out[threads] = bench["bytes_per_second"]
    return out


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        data = json.load(f)

    batched = collect(data, "BM_DelegatedWriteBatched")
    per_chunk = collect(data, "BM_DelegatedWritePerChunk")
    common = sorted(set(batched) & set(per_chunk))
    if not common:
        print(f"FAIL: no matching 1 MiB batched/per-chunk results in {sys.argv[1]}")
        return 1

    threads = common[0]  # Lowest thread count: least scheduler noise.
    b, c = batched[threads], per_chunk[threads]
    if b <= 0 or c <= 0:
        print(f"FAIL: degenerate throughput (batched={b}, per_chunk={c})")
        return 1
    if b < c:
        print(f"FAIL: batched 1 MiB writes ({b / 1e6:.1f} MB/s) slower than per-chunk "
              f"({c / 1e6:.1f} MB/s) at threads={threads} - batching regressed")
        return 1

    print(f"OK: 1 MiB writes threads={threads} batched={b / 1e6:.1f} MB/s "
          f"per_chunk={c / 1e6:.1f} MB/s ({b / c:.2f}x)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
