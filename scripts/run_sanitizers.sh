#!/usr/bin/env bash
# Builds the concurrency-heavy test binaries (delegation pool, callback watchdog, crash
# explorer, op-ring drainer, multi-tenant schedule explorer, fuzz corpus, fleet) under
# ThreadSanitizer and AddressSanitizer and runs a smoke subset of each.
#
# Usage: scripts/run_sanitizers.sh [thread|address] [--adversarial]
#   (no sanitizer: both, thread first)
#   --adversarial: run the FULL schedule-explorer, fuzz-corpus, and integrity sweeps
#   instead of the smoke subsets — the scheduled CI job's deep pass.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
adversarial=0
sanitizers=()
for arg in "$@"; do
  case "$arg" in
    --adversarial) adversarial=1 ;;
    thread|address) sanitizers+=("$arg") ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done
if [[ ${#sanitizers[@]} -eq 0 ]]; then
  sanitizers=(thread address)
fi

# Smoke subsets: the full suites pass too, but these filters keep a two-sanitizer sweep
# under a few minutes on one CPU while still exercising every thread-crossing path
# (parking/wakeup/stealing, worker-fault retry, watchdog abandonment, explorer reboots,
# tenant interleaving, verify-and-quarantine).
delegation_filter='DelegationFaultTest.*:DelegationTest.ConcurrentStandaloneSubmitsFromManyThreads:DelegationTest.*Park*:DelegationTest.*Steal*:DelegationTest.*Batch*'
explorer_filter='FaultSimKernelTest.*:CrashExplorerTest.AppendHeavyWorkloadCleanAtEveryFence'
# Every OpRingTest crosses the submitter/drainer boundary (SPSC rings, park/wake, epoch
# close before CQE post) — exactly what TSan needs to see; SpscRingTest adds the raw
# two-thread ring in isolation.
ring_filter='OpRingTest.*'
spsc_filter='SpscRingTest.*'
# Schedule explorer smoke: determinism + a full clean sweep (both tenants, crash points);
# fuzz smoke: one seed variant of every corruption class plus the verifier/quarantine
# bounds tests.
schedule_filter='ScheduleExplorerTest.GeneratorIsDeterministicAndBounded:ScheduleExplorerTest.CleanKernelSweepsClean'
fuzz_filter='*FuzzCorpusTest*_v0:VerifierBoundsTest.*:QuarantineBoundsTest.*'
# Fleet suite: 64 tenants over the sharded controller, concurrent cross-shard renames,
# revoke/force-release canaries, cross-shard forgeries — the shard refactor's
# thread-crossing paths. Small enough to run whole under both sanitizers.
fleet_filter='FleetTest.*'
# Tier suite: background digestion thread vs grants, promote-cache seqlock reads, the
# LeaseCache refill worker, and the digestion crash sweep. Small enough to run whole.
tier_filter='TierTest.*'
targets=(delegation_test crash_explorer_test op_ring_test common_test
         schedule_explorer_test fuzz_corpus_test fleet_test tier_test)
if [[ $adversarial -eq 1 ]]; then
  schedule_filter='*'
  fuzz_filter='*'
  explorer_filter='*'
  targets+=(integrity_test)
fi

for san in "${sanitizers[@]}"; do
  build="$repo/build-$san"
  echo "== TRIO_SANITIZE=$san: configuring $build =="
  cmake -B "$build" -S "$repo" -DTRIO_SANITIZE="$san" >/dev/null
  cmake --build "$build" -j2 --target "${targets[@]}"

  echo "== TRIO_SANITIZE=$san: delegation_test =="
  "$build/tests/delegation_test" --gtest_filter="$delegation_filter" --gtest_brief=1

  echo "== TRIO_SANITIZE=$san: crash_explorer_test =="
  "$build/tests/crash_explorer_test" --gtest_filter="$explorer_filter" --gtest_brief=1

  echo "== TRIO_SANITIZE=$san: op_ring_test =="
  "$build/tests/op_ring_test" --gtest_filter="$ring_filter" --gtest_brief=1
  "$build/tests/common_test" --gtest_filter="$spsc_filter" --gtest_brief=1

  echo "== TRIO_SANITIZE=$san: schedule_explorer_test =="
  "$build/tests/schedule_explorer_test" --gtest_filter="$schedule_filter" --gtest_brief=1

  echo "== TRIO_SANITIZE=$san: fuzz_corpus_test =="
  "$build/tests/fuzz_corpus_test" --gtest_filter="$fuzz_filter" --gtest_brief=1

  echo "== TRIO_SANITIZE=$san: fleet_test =="
  "$build/tests/fleet_test" --gtest_filter="$fleet_filter" --gtest_brief=1

  echo "== TRIO_SANITIZE=$san: tier_test =="
  "$build/tests/tier_test" --gtest_filter="$tier_filter" --gtest_brief=1

  if [[ $adversarial -eq 1 ]]; then
    echo "== TRIO_SANITIZE=$san: integrity_test (full corruption sweep) =="
    "$build/tests/integrity_test" --gtest_brief=1
  fi
done

echo "== sanitizer sweep passed: ${sanitizers[*]} (adversarial=$adversarial) =="
