#!/usr/bin/env bash
# Builds the concurrency-heavy test binaries (delegation pool, callback watchdog, crash
# explorer, op-ring drainer) under ThreadSanitizer and AddressSanitizer and runs a smoke
# subset of each.
# Usage: scripts/run_sanitizers.sh [thread|address]   (default: both, thread first)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers=("${1:-thread}")
if [[ $# -eq 0 ]]; then
  sanitizers=(thread address)
fi

# Smoke subsets: the full suites pass too, but these filters keep a two-sanitizer sweep
# under a few minutes on one CPU while still exercising every thread-crossing path
# (parking/wakeup/stealing, worker-fault retry, watchdog abandonment, explorer reboots).
delegation_filter='DelegationFaultTest.*:DelegationTest.ConcurrentStandaloneSubmitsFromManyThreads:DelegationTest.*Park*:DelegationTest.*Steal*:DelegationTest.*Batch*'
explorer_filter='FaultSimKernelTest.*:CrashExplorerTest.AppendHeavyWorkloadCleanAtEveryFence'
# Every OpRingTest crosses the submitter/drainer boundary (SPSC rings, park/wake, epoch
# close before CQE post) — exactly what TSan needs to see; SpscRingTest adds the raw
# two-thread ring in isolation.
ring_filter='OpRingTest.*'
spsc_filter='SpscRingTest.*'

for san in "${sanitizers[@]}"; do
  build="$repo/build-$san"
  echo "== TRIO_SANITIZE=$san: configuring $build =="
  cmake -B "$build" -S "$repo" -DTRIO_SANITIZE="$san" >/dev/null
  cmake --build "$build" -j2 --target delegation_test crash_explorer_test op_ring_test common_test

  echo "== TRIO_SANITIZE=$san: delegation_test =="
  "$build/tests/delegation_test" --gtest_filter="$delegation_filter" --gtest_brief=1

  echo "== TRIO_SANITIZE=$san: crash_explorer_test =="
  "$build/tests/crash_explorer_test" --gtest_filter="$explorer_filter" --gtest_brief=1

  echo "== TRIO_SANITIZE=$san: op_ring_test =="
  "$build/tests/op_ring_test" --gtest_filter="$ring_filter" --gtest_brief=1
  "$build/tests/common_test" --gtest_filter="$spsc_filter" --gtest_brief=1
done

echo "== sanitizer sweep passed: ${sanitizers[*]} =="
