#!/usr/bin/env python3
"""CI gate for the op-ring group-commit bench.

Reads a bench_ring --benchmark_out JSON and checks the coalescing property the ring
exists for: fences per 4 KiB write at depth 8 must be strictly lower than at depth 1
(one epoch close per drain pass, so deeper passes amortize the fence). Wall-clock is
deliberately NOT gated — it varies with core count and scheduler; the fence counters
are deterministic.

Usage: check_ring_bench.py <bench_ring.json>
"""

import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        data = json.load(f)

    fences_per_op = {}
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if "RingWrite4K" not in name or "fences_per_op" not in bench:
            continue
        for token in name.split("/"):
            if token.startswith("depth:"):
                fences_per_op[int(token.split(":")[1])] = bench["fences_per_op"]

    missing = [d for d in (1, 8) if d not in fences_per_op]
    if missing:
        print(f"FAIL: no RingWrite4K result for depth(s) {missing} in {sys.argv[1]}")
        return 1

    d1, d8 = fences_per_op[1], fences_per_op[8]
    if d1 <= 0 or d8 <= 0:
        print(f"FAIL: degenerate fence counters (depth1={d1}, depth8={d8})")
        return 1
    if not d8 < d1:
        print(f"FAIL: depth-8 fences/op ({d8:.4f}) not lower than depth-1 ({d1:.4f}) "
              "- group-commit coalescing is broken")
        return 1

    print(f"OK: fences/op depth1={d1:.4f} depth8={d8:.4f} ({d1 / d8:.1f}x coalescing)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
