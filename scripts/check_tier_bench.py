#!/usr/bin/env python3
"""CI gate for the absorb-tier bench.

Reads a bench_tier --benchmark_out JSON and checks the two properties the tier exists
for:
  1. Sync-path immunity: BM_TierSyncWrite with the absorb tier (mode:1, dataset 4x NVM)
     must stay within 1.25x of the NVM-only configuration (mode:0, dataset fits) on
     items_per_second. Both runs execute in the same process, so the comparison is a
     ratio and robust to absolute machine speed. Digestion must also be live
     (digest_pages > 0) or the absorb run silently degenerates into an overcommitted
     NVM-only run.
  2. Promote-cache efficacy: BM_TierHotRead at threads:1 must report hit_rate >= 0.90
     (promote-cache hits / tier lookups, deltas over the timed run) with a nonzero
     absolute hit count, so a silently-disabled cache cannot pass.

Usage: check_tier_bench.py <bench_tier.json>
"""

import json
import sys

MAX_SYNC_SLOWDOWN = 1.25
MIN_HIT_RATE = 0.90


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[1]) as f:
        data = json.load(f)

    sync = {}  # mode -> (items_per_second, digest_pages)
    hit_rate = None
    promote_hits = 0.0
    for bench in data.get("benchmarks", []):
        name = bench.get("name", "")
        if "TierSyncWrite" in name and "items_per_second" in bench:
            for token in name.split("/"):
                if token.startswith("mode:"):
                    mode = int(token.split(":")[1])
                    sync[mode] = (bench["items_per_second"],
                                  bench.get("digest_pages", 0.0))
        if "TierHotRead" in name and "/threads:1" in name and "hit_rate" in bench:
            hit_rate = bench["hit_rate"]
            promote_hits = bench.get("promote_hits", 0.0)

    missing = [m for m in (0, 1) if m not in sync]
    if missing:
        print(f"FAIL: no TierSyncWrite result for mode {missing} in {sys.argv[1]}")
        return 1
    if hit_rate is None:
        print(f"FAIL: no TierHotRead threads:1 hit_rate in {sys.argv[1]}")
        return 1

    nvm_rate, _ = sync[0]
    tier_rate, digest_pages = sync[1]
    if nvm_rate <= 0 or tier_rate <= 0:
        print(f"FAIL: degenerate sync throughput (nvm={nvm_rate}, tier={tier_rate})")
        return 1
    slowdown = nvm_rate / tier_rate
    if slowdown > MAX_SYNC_SLOWDOWN:
        print(f"FAIL: absorb-tier sync path is {slowdown:.2f}x slower than NVM-only "
              f"(limit {MAX_SYNC_SLOWDOWN}x) - the oversized dataset is leaking into "
              f"the sync path")
        return 1
    if digest_pages <= 0:
        print("FAIL: absorb run digested zero pages - the tier never engaged and the "
              "sync comparison is meaningless")
        return 1
    if hit_rate < MIN_HIT_RATE:
        print(f"FAIL: promote-cache hit rate {hit_rate:.3f} below {MIN_HIT_RATE} on "
              f"the Zipfian hot-read workload")
        return 1
    if promote_hits <= 0:
        print("FAIL: zero promote-cache hits - the cache never engaged")
        return 1

    print(f"OK: sync slowdown {slowdown:.2f}x (limit {MAX_SYNC_SLOWDOWN}x, "
          f"digest_pages={digest_pages:.0f}), promote hit rate {hit_rate:.3f} "
          f"(hits={promote_hits:.0f})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
