# Empty dependencies file for minildb_test.
# This may be replaced when dependencies are built.
