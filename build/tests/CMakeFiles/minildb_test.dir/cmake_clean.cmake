file(REMOVE_RECURSE
  "CMakeFiles/minildb_test.dir/minildb_test.cc.o"
  "CMakeFiles/minildb_test.dir/minildb_test.cc.o.d"
  "minildb_test"
  "minildb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/minildb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
