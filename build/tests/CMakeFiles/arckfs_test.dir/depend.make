# Empty dependencies file for arckfs_test.
# This may be replaced when dependencies are built.
