file(REMOVE_RECURSE
  "CMakeFiles/arckfs_test.dir/arckfs_test.cc.o"
  "CMakeFiles/arckfs_test.dir/arckfs_test.cc.o.d"
  "arckfs_test"
  "arckfs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arckfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
