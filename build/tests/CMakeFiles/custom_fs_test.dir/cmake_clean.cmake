file(REMOVE_RECURSE
  "CMakeFiles/custom_fs_test.dir/custom_fs_test.cc.o"
  "CMakeFiles/custom_fs_test.dir/custom_fs_test.cc.o.d"
  "custom_fs_test"
  "custom_fs_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_fs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
