# Empty compiler generated dependencies file for custom_fs_test.
# This may be replaced when dependencies are built.
