file(REMOVE_RECURSE
  "CMakeFiles/security_boundary_test.dir/security_boundary_test.cc.o"
  "CMakeFiles/security_boundary_test.dir/security_boundary_test.cc.o.d"
  "security_boundary_test"
  "security_boundary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/security_boundary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
