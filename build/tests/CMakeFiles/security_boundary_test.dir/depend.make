# Empty dependencies file for security_boundary_test.
# This may be replaced when dependencies are built.
