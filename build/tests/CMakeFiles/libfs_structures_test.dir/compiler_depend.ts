# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for libfs_structures_test.
