# Empty dependencies file for libfs_structures_test.
# This may be replaced when dependencies are built.
