file(REMOVE_RECURSE
  "CMakeFiles/libfs_structures_test.dir/libfs_structures_test.cc.o"
  "CMakeFiles/libfs_structures_test.dir/libfs_structures_test.cc.o.d"
  "libfs_structures_test"
  "libfs_structures_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libfs_structures_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
