file(REMOVE_RECURSE
  "CMakeFiles/baselines_engine_test.dir/baselines_engine_test.cc.o"
  "CMakeFiles/baselines_engine_test.dir/baselines_engine_test.cc.o.d"
  "baselines_engine_test"
  "baselines_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
