file(REMOVE_RECURSE
  "CMakeFiles/core_state_test.dir/core_state_test.cc.o"
  "CMakeFiles/core_state_test.dir/core_state_test.cc.o.d"
  "core_state_test"
  "core_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
