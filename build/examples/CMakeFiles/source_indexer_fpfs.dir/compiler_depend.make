# Empty compiler generated dependencies file for source_indexer_fpfs.
# This may be replaced when dependencies are built.
