file(REMOVE_RECURSE
  "CMakeFiles/source_indexer_fpfs.dir/source_indexer_fpfs.cpp.o"
  "CMakeFiles/source_indexer_fpfs.dir/source_indexer_fpfs.cpp.o.d"
  "source_indexer_fpfs"
  "source_indexer_fpfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_indexer_fpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
