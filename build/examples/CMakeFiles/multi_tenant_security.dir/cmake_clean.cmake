file(REMOVE_RECURSE
  "CMakeFiles/multi_tenant_security.dir/multi_tenant_security.cpp.o"
  "CMakeFiles/multi_tenant_security.dir/multi_tenant_security.cpp.o.d"
  "multi_tenant_security"
  "multi_tenant_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_tenant_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
