# Empty compiler generated dependencies file for multi_tenant_security.
# This may be replaced when dependencies are built.
