# Empty compiler generated dependencies file for mail_server_kvfs.
# This may be replaced when dependencies are built.
