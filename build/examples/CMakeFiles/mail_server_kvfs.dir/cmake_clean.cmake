file(REMOVE_RECURSE
  "CMakeFiles/mail_server_kvfs.dir/mail_server_kvfs.cpp.o"
  "CMakeFiles/mail_server_kvfs.dir/mail_server_kvfs.cpp.o.d"
  "mail_server_kvfs"
  "mail_server_kvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mail_server_kvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
