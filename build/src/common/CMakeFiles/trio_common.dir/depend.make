# Empty dependencies file for trio_common.
# This may be replaced when dependencies are built.
