file(REMOVE_RECURSE
  "CMakeFiles/trio_common.dir/logging.cc.o"
  "CMakeFiles/trio_common.dir/logging.cc.o.d"
  "CMakeFiles/trio_common.dir/status.cc.o"
  "CMakeFiles/trio_common.dir/status.cc.o.d"
  "libtrio_common.a"
  "libtrio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
