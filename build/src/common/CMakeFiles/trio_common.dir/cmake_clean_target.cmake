file(REMOVE_RECURSE
  "libtrio_common.a"
)
