# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("nvm")
subdirs("core")
subdirs("verifier")
subdirs("kernel")
subdirs("libfs")
subdirs("attacks")
subdirs("kvfs")
subdirs("fpfs")
subdirs("baselines")
subdirs("sim")
subdirs("workloads")
subdirs("minildb")
