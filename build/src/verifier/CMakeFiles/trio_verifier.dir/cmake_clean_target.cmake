file(REMOVE_RECURSE
  "libtrio_verifier.a"
)
