# Empty compiler generated dependencies file for trio_verifier.
# This may be replaced when dependencies are built.
