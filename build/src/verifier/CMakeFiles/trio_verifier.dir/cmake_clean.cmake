file(REMOVE_RECURSE
  "CMakeFiles/trio_verifier.dir/fsck.cc.o"
  "CMakeFiles/trio_verifier.dir/fsck.cc.o.d"
  "CMakeFiles/trio_verifier.dir/verifier.cc.o"
  "CMakeFiles/trio_verifier.dir/verifier.cc.o.d"
  "libtrio_verifier.a"
  "libtrio_verifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_verifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
