file(REMOVE_RECURSE
  "CMakeFiles/trio_kvfs.dir/kvfs.cc.o"
  "CMakeFiles/trio_kvfs.dir/kvfs.cc.o.d"
  "libtrio_kvfs.a"
  "libtrio_kvfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_kvfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
