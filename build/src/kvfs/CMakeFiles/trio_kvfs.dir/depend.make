# Empty dependencies file for trio_kvfs.
# This may be replaced when dependencies are built.
