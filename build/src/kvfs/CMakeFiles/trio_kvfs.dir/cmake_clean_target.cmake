file(REMOVE_RECURSE
  "libtrio_kvfs.a"
)
