
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/baselines.cc" "src/baselines/CMakeFiles/trio_baselines.dir/baselines.cc.o" "gcc" "src/baselines/CMakeFiles/trio_baselines.dir/baselines.cc.o.d"
  "/root/repo/src/baselines/fs_factory.cc" "src/baselines/CMakeFiles/trio_baselines.dir/fs_factory.cc.o" "gcc" "src/baselines/CMakeFiles/trio_baselines.dir/fs_factory.cc.o.d"
  "/root/repo/src/baselines/simple_kernel_fs.cc" "src/baselines/CMakeFiles/trio_baselines.dir/simple_kernel_fs.cc.o" "gcc" "src/baselines/CMakeFiles/trio_baselines.dir/simple_kernel_fs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/libfs/CMakeFiles/trio_libfs.dir/DependInfo.cmake"
  "/root/repo/build/src/kvfs/CMakeFiles/trio_kvfs.dir/DependInfo.cmake"
  "/root/repo/build/src/fpfs/CMakeFiles/trio_fpfs.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/trio_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/verifier/CMakeFiles/trio_verifier.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/trio_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nvm/CMakeFiles/trio_nvm.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/trio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
