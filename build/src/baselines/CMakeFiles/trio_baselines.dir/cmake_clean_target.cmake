file(REMOVE_RECURSE
  "libtrio_baselines.a"
)
