file(REMOVE_RECURSE
  "CMakeFiles/trio_baselines.dir/baselines.cc.o"
  "CMakeFiles/trio_baselines.dir/baselines.cc.o.d"
  "CMakeFiles/trio_baselines.dir/fs_factory.cc.o"
  "CMakeFiles/trio_baselines.dir/fs_factory.cc.o.d"
  "CMakeFiles/trio_baselines.dir/simple_kernel_fs.cc.o"
  "CMakeFiles/trio_baselines.dir/simple_kernel_fs.cc.o.d"
  "libtrio_baselines.a"
  "libtrio_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
