# Empty compiler generated dependencies file for trio_baselines.
# This may be replaced when dependencies are built.
