file(REMOVE_RECURSE
  "CMakeFiles/trio_libfs.dir/arckfs.cc.o"
  "CMakeFiles/trio_libfs.dir/arckfs.cc.o.d"
  "CMakeFiles/trio_libfs.dir/fs_interface.cc.o"
  "CMakeFiles/trio_libfs.dir/fs_interface.cc.o.d"
  "libtrio_libfs.a"
  "libtrio_libfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_libfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
