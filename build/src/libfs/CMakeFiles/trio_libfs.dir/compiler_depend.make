# Empty compiler generated dependencies file for trio_libfs.
# This may be replaced when dependencies are built.
