file(REMOVE_RECURSE
  "libtrio_libfs.a"
)
