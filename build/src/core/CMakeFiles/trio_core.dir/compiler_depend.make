# Empty compiler generated dependencies file for trio_core.
# This may be replaced when dependencies are built.
