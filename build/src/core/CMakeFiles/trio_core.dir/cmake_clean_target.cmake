file(REMOVE_RECURSE
  "libtrio_core.a"
)
