file(REMOVE_RECURSE
  "CMakeFiles/trio_core.dir/core_state.cc.o"
  "CMakeFiles/trio_core.dir/core_state.cc.o.d"
  "libtrio_core.a"
  "libtrio_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
