file(REMOVE_RECURSE
  "CMakeFiles/trio_kernel.dir/controller.cc.o"
  "CMakeFiles/trio_kernel.dir/controller.cc.o.d"
  "libtrio_kernel.a"
  "libtrio_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
