# Empty dependencies file for trio_kernel.
# This may be replaced when dependencies are built.
