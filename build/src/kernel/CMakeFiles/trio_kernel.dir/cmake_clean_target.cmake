file(REMOVE_RECURSE
  "libtrio_kernel.a"
)
