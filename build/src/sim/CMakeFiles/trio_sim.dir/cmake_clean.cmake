file(REMOVE_RECURSE
  "CMakeFiles/trio_sim.dir/model.cc.o"
  "CMakeFiles/trio_sim.dir/model.cc.o.d"
  "CMakeFiles/trio_sim.dir/profiles.cc.o"
  "CMakeFiles/trio_sim.dir/profiles.cc.o.d"
  "libtrio_sim.a"
  "libtrio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
