file(REMOVE_RECURSE
  "libtrio_fpfs.a"
)
