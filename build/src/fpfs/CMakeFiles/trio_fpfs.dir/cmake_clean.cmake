file(REMOVE_RECURSE
  "CMakeFiles/trio_fpfs.dir/fpfs.cc.o"
  "CMakeFiles/trio_fpfs.dir/fpfs.cc.o.d"
  "libtrio_fpfs.a"
  "libtrio_fpfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_fpfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
