# Empty dependencies file for trio_fpfs.
# This may be replaced when dependencies are built.
