file(REMOVE_RECURSE
  "libtrio_attacks.a"
)
