# Empty compiler generated dependencies file for trio_attacks.
# This may be replaced when dependencies are built.
