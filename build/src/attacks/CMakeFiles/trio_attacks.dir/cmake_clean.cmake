file(REMOVE_RECURSE
  "CMakeFiles/trio_attacks.dir/attacks.cc.o"
  "CMakeFiles/trio_attacks.dir/attacks.cc.o.d"
  "libtrio_attacks.a"
  "libtrio_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
