file(REMOVE_RECURSE
  "CMakeFiles/trio_minildb.dir/db.cc.o"
  "CMakeFiles/trio_minildb.dir/db.cc.o.d"
  "CMakeFiles/trio_minildb.dir/db_bench.cc.o"
  "CMakeFiles/trio_minildb.dir/db_bench.cc.o.d"
  "CMakeFiles/trio_minildb.dir/sstable.cc.o"
  "CMakeFiles/trio_minildb.dir/sstable.cc.o.d"
  "libtrio_minildb.a"
  "libtrio_minildb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_minildb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
