file(REMOVE_RECURSE
  "libtrio_minildb.a"
)
