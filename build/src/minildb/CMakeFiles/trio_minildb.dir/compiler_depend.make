# Empty compiler generated dependencies file for trio_minildb.
# This may be replaced when dependencies are built.
