file(REMOVE_RECURSE
  "CMakeFiles/trio_workloads.dir/workloads.cc.o"
  "CMakeFiles/trio_workloads.dir/workloads.cc.o.d"
  "libtrio_workloads.a"
  "libtrio_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
