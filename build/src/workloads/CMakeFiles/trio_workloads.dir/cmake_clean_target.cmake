file(REMOVE_RECURSE
  "libtrio_workloads.a"
)
