# Empty compiler generated dependencies file for trio_workloads.
# This may be replaced when dependencies are built.
