file(REMOVE_RECURSE
  "CMakeFiles/trio_nvm.dir/nvm.cc.o"
  "CMakeFiles/trio_nvm.dir/nvm.cc.o.d"
  "libtrio_nvm.a"
  "libtrio_nvm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trio_nvm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
