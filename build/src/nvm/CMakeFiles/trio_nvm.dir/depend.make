# Empty dependencies file for trio_nvm.
# This may be replaced when dependencies are built.
