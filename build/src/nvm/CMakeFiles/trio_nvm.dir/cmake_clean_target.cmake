file(REMOVE_RECURSE
  "libtrio_nvm.a"
)
